"""Parallel batch execution of scenario fleets, with durable campaigns.

The batch runner executes a list of :class:`~repro.scenario.ScenarioSpec`
in a :class:`~concurrent.futures.ProcessPoolExecutor` and appends one JSON
record per scenario to a JSONL results store.  The worker transport is
zero-copy by construction: each submission carries only the scenario's
declarative dictionary plus the cache *location* (a directory path -- the
content keys are recomputed inside the worker), never a pickled irradiance
array or any other bulk simulation object; workers attach to the shared
on-disk stage cache, whose bulk arrays they memory-map read-only (see
:mod:`repro.runner.cache`).  The first scenario that needs a given solar
field computes and publishes it, all later scenarios -- in this run or the
next -- hit the cache.

Submission is chunked and completion-streamed: at most a small multiple of
the worker count is in flight at any moment (so huge fleets do not pile up
thousands of pending futures) and finished results are collected with
``concurrent.futures.wait`` as they complete instead of the ``executor.map``
barrier.  Results are still returned in input order regardless of completion
order, and all scenario inputs are seeded, so a parallel batch is
bit-for-bit identical to a serial one.

Campaigns
---------
Passing ``store=`` turns the batch into a *campaign*: every point is first
enrolled in a SQLite-backed :class:`~repro.runner.store.ResultStore` (keyed
by its scenario content digest), points already ``done`` from a previous
run are skipped, failures are recorded per-point -- a worker exception or
even a worker *death* fails only its own point, never the whole run -- and
failed points are retried up to ``retries`` times.  The returned
:class:`BatchResult` then carries a
:class:`~repro.runner.store.CampaignSummary` with done/computed/skipped/
failed/retried accounting plus the per-stage cache provenance of the
points computed by this invocation.  Without a store the behaviour is the
classic in-memory pass, where the first scenario failure raises a
:class:`~repro.errors.ScenarioExecutionError` naming the failing point.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .. import faults
from ..errors import ConfigurationError, ScenarioExecutionError
from ..io.placement_json import placement_from_dict
from ..scenario.spec import ScenarioSpec
from ..telemetry import MetricStats, configure_from_env, merge_active_trace, span, trace_event
from .cache import PathLike, StageCache, resolve_cache
from .solvers import WarmStart
from .stages import ScenarioResult, run_scenario, scenario_content_digest
from .store import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALE_AFTER_S,
    METRIC_KIND_COUNTER,
    METRIC_KIND_POINT_TIME,
    METRIC_KIND_STAGE_HIT_TIME,
    METRIC_KIND_STAGE_RECOMPUTE_TIME,
    METRIC_KIND_STAGE_TIME,
    STATUS_DONE,
    STATUS_TIMED_OUT,
    CampaignSummary,
    ResultStore,
    resolve_store,
)

#: In-flight submissions per worker process: enough to keep every worker
#: busy while results stream back, small enough that a 10k-scenario fleet
#: does not materialise 10k pending futures up front.
INFLIGHT_PER_WORKER = 2

#: Campaign name used when ``run_batch`` gets a store but no explicit name.
DEFAULT_CAMPAIGN = "batch"

#: How long the parallel driver blocks in ``wait`` per loop tick.  Bounded
#: so deadlines, heartbeats, stale-lease reclamation and stop signals are
#: all checked at this cadence even while every worker is busy.
WAIT_TICK_S = 0.25

# DEFAULT_HEARTBEAT_S / DEFAULT_STALE_AFTER_S now live in .store (shared
# with the worker daemon) and are re-exported above for compatibility.


def retry_backoff_delay(base_s: float, attempt: int, key: str) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``base_s * 2**attempt``, jittered into ``[0.5x, 1.5x)`` by a hash of
    ``(key, attempt)`` -- deterministic for reproducible tests, yet
    decorrelated across points so a fleet of failing points does not
    retry in lockstep (the usual thundering-herd jitter rationale).
    """
    if base_s <= 0.0:
        return 0.0
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:4], "big") / 2**32
    return base_s * (2**attempt) * (0.5 + unit)


class _StopRequested(BaseException):
    """Internal: a SIGTERM/SIGINT asked the driver to wind down cleanly.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    worker-error handler can swallow it; the driver converts it to a
    ``KeyboardInterrupt`` once in-flight points are marked and the pool is
    down.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


def _worker_init() -> None:
    """Worker-process initializer: restore default signal dispositions.

    Forked workers inherit the parent's stop handlers, which must not run
    in a worker: a worker has to die promptly on ``terminate()`` (SIGTERM)
    and leave Ctrl-C -- SIGINT, delivered to the whole process group -- to
    the parent driver, which marks in-flight points and shuts down cleanly.
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _terminate_worker_processes(executor: ProcessPoolExecutor) -> int:
    """Hard-terminate every worker process of a pool (watchdog/stop path).

    ``ProcessPoolExecutor`` has no per-task kill, so a hung worker is
    evicted by terminating the pool's processes and rebuilding; returns the
    number of processes signalled.
    """
    processes = getattr(executor, "_processes", None) or {}
    count = 0
    for process in list(processes.values()):
        try:
            process.terminate()
            count += 1
        except Exception:
            pass
    return count


def count_stage_flags(
    results: Sequence[ScenarioResult], cached: bool
) -> Dict[str, int]:
    """Tally per-stage cache provenance across scenario results.

    ``cached=True`` counts results whose stage was served from the cache,
    ``cached=False`` counts recomputations.  Every stage that appears in any
    result's provenance map gets an entry (possibly zero), so hit and miss
    tallies always cover the same stage set.  Shared by the batch- and
    sweep-level accounting so the two can never drift apart.
    """
    counts: Dict[str, int] = {}
    for result in results:
        for stage, hit in result.stage_cached.items():
            counts[stage] = counts.get(stage, 0) + (1 if hit == cached else 0)
    return counts


def sum_stage_times(
    results: Sequence[ScenarioResult], cached: bool
) -> Dict[str, float]:
    """Sum per-stage wall time across results, split by cache provenance.

    The wall-clock counterpart of :func:`count_stage_flags`: ``cached=True``
    totals the seconds spent *loading* cached stages, ``cached=False`` the
    seconds spent recomputing them, keyed over the same stage set so the
    time and count accounting can never drift apart.
    """
    totals: Dict[str, float] = {}
    for result in results:
        for stage, hit in result.stage_cached.items():
            seconds = result.stage_times_s.get(stage, 0.0) if hit == cached else 0.0
            totals[stage] = totals.get(stage, 0.0) + seconds
    return totals


@dataclass
class BatchResult:
    """Outcome of one batch run."""

    results: List[ScenarioResult]
    runtime_s: float
    jobs: int
    results_path: Optional[Path] = None
    cache_dir: Optional[Path] = None
    campaign: Optional[CampaignSummary] = None

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios with results (computed or reloaded)."""
        return len(self.results)

    def by_name(self) -> Dict[str, ScenarioResult]:
        """Results keyed by scenario name."""
        return {result.scenario: result for result in self.results}

    def cache_hit_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios served from the cache."""
        return count_stage_flags(self.results, cached=True)

    def cache_miss_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios that *recomputed* the stage.

        The complement of :meth:`cache_hit_counts` over the same provenance
        records: ``misses[stage]`` scenarios had to recompute ``stage``
        because no cache entry existed (or the cache was disabled).  A warm
        re-run of an unchanged fleet must report zero misses for every
        expensive stage -- the sweep engine's reuse accounting asserts
        exactly that.
        """
        return count_stage_flags(self.results, cached=False)

    def summary(self) -> dict:
        """Aggregate figures for reports and the CLI."""
        return {
            "n_scenarios": self.n_scenarios,
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "total_energy_mwh": sum(r.annual_energy_mwh for r in self.results),
            "cache_hits_by_stage": self.cache_hit_counts(),
            "cache_misses_by_stage": self.cache_miss_counts(),
            "results_path": None if self.results_path is None else str(self.results_path),
            "campaign": None if self.campaign is None else self.campaign.as_dict(),
        }


def _worker_payload(
    spec: ScenarioSpec,
    cache_dir: Optional[str],
    use_cache: bool,
    mmap_arrays: bool = True,
    warm_hint: Optional[dict] = None,
) -> Tuple[dict, Optional[str], bool, bool, Optional[dict]]:
    """The pickled work unit shipped to one worker process.

    Deliberately tiny: the declarative scenario dictionary, the cache
    *location* (plus its memmap flag), and an optional warm-start hint (a
    neighbour's placement dict -- module anchor tuples, not arrays).
    Workers rederive every content key from the spec and pull bulk arrays
    from the shared cache (memory-mapped), so no irradiance matrix -- or
    any other numpy payload -- ever crosses the process boundary.  A test
    asserts the serialised size stays in the kilobytes.
    """
    return (spec.to_dict(), cache_dir, use_cache, mmap_arrays, warm_hint)


def _warm_start_from_hint(
    hint: Union[WarmStart, Mapping[str, Any], None],
) -> Optional[WarmStart]:
    """Deserialise a transported warm hint; a malformed one means cold.

    Hints are strictly an accelerant -- any parsing problem downgrades the
    solve to cold instead of failing the point.
    """
    if hint is None or isinstance(hint, WarmStart):
        return hint
    try:
        return WarmStart(
            placement=placement_from_dict(hint["placement"]),
            exact_prefix=bool(hint.get("exact_prefix", False)),
            source=hint.get("source"),
        )
    except Exception:
        return None


def execute_point(
    spec: Union[ScenarioSpec, Mapping[str, Any]],
    cache: Optional[StageCache] = None,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    mmap_arrays: bool = True,
    warm_hint: Union[WarmStart, Mapping[str, Any], None] = None,
) -> Tuple[str, dict]:
    """Run one campaign point and classify the outcome in-process.

    The shared per-point execution path of every driver: the batch pool
    worker, the serial campaign driver and the
    :mod:`~repro.runner.worker` fleet daemon all route through here, so a
    point behaves identically no matter which process model executes it.

    Fires the ``worker.crash`` / ``worker.hang`` chaos sites (keyed by the
    scenario name) before touching the scenario, then returns
    ``("ok", result_record)`` on success or
    ``("error", {"error", "traceback"})`` when the scenario raises — an
    exception never escapes, so the caller can attribute the failure to
    its point instead of surfacing a bare traceback.  (Stop signals —
    ``BaseException`` — do escape, by design.)

    ``cache`` takes an existing :class:`~repro.runner.cache.StageCache`
    handle (preserving its hit/miss counters for the caller); otherwise
    ``cache_dir`` opens one in place.  With neither, the point runs
    uncached.

    ``warm_hint`` is a :class:`~repro.runner.solvers.WarmStart` or its
    transported dict form (``{"placement", "exact_prefix", "source"}``);
    it reaches warm-start-capable solvers only and never alters the
    point's identity (the spec digest is hint-free).
    """
    spec = spec if isinstance(spec, ScenarioSpec) else ScenarioSpec.from_dict(spec)
    faults.fire("worker.crash", key=spec.name)
    faults.fire("worker.hang", key=spec.name)
    try:
        if cache is None and cache_dir is not None:
            cache = StageCache(
                root=Path(cache_dir), enabled=use_cache, mmap_arrays=mmap_arrays
            )
        result = run_scenario(
            spec,
            cache=cache,
            use_cache=use_cache,
            warm_start=_warm_start_from_hint(warm_hint),
        )
        return ("ok", result.to_dict())
    except Exception as exc:
        return (
            "error",
            {
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            },
        )


def _run_scenario_worker(args: tuple) -> Tuple[str, dict]:
    """Process-pool entry point: environment setup around :func:`execute_point`.

    Returns ``("ok", result_record)`` or ``("error", {"error",
    "traceback"})`` (see :func:`execute_point`), so an exception inside a
    worker never tears down the pool and the parent can attribute the
    failure to its point (name + digest) instead of surfacing a bare pool
    traceback.
    """
    # The batch already parallelises across processes; keep the horizon
    # kernel single-threaded inside each worker to avoid oversubscription.
    os.environ.setdefault("REPRO_HORIZON_WORKERS", "1")
    # Tracing propagates through $REPRO_TRACE (set by telemetry.configure in
    # the parent): forked workers already hold a re-keyed tracer via the
    # at-fork hook, spawned workers pick the path up here.  Each worker
    # writes its own shard; the parent merges at drain time.
    configure_from_env()
    # Chaos hooks: $REPRO_FAULTS propagates the same way.  ``worker.crash``
    # kills this process outright (exercising pool-death recovery in the
    # parent), ``worker.hang`` sleeps past any deadline (exercising the
    # watchdog).  Both are no-ops unless a fault plan is armed; they fire
    # inside ``execute_point``.
    faults.configure_from_env()
    spec_dict, cache_dir, use_cache, mmap_arrays, warm_hint = args
    return execute_point(
        spec_dict,
        cache_dir=cache_dir,
        use_cache=use_cache,
        mmap_arrays=mmap_arrays,
        warm_hint=warm_hint,
    )


def _point_error_message(name: str, digest: str, error: str) -> str:
    """Failure text attributing a worker error to its campaign point."""
    return f"scenario {name!r} (digest {digest[:12]}) failed: {error}"


def _drive_points(
    indices: Sequence[int],
    specs: Sequence[ScenarioSpec],
    stage_cache: StageCache,
    use_cache: bool,
    jobs: int,
    on_start: Callable[[int], None],
    on_done: Callable[[int, dict, float], None],
    on_error: Callable[[int, str, str], Optional[float]],
    on_interrupted: Callable[[int, str], Optional[float]],
    on_timeout: Optional[Callable[[int], Optional[float]]] = None,
    on_stop: Optional[Callable[[int], None]] = None,
    on_tick: Optional[Callable[[Set[int]], Sequence[int]]] = None,
    timeout_s: Optional[float] = None,
    warm_hint_for: Optional[Callable[[int], Optional[dict]]] = None,
) -> None:
    """Execute the points at ``indices``, serially or in worker processes.

    ``warm_hint_for(index)`` (optional) is consulted at *submit* time and
    may return a transportable warm-start hint dict for the point -- the
    campaign layer resolves each point's designated neighbour against
    what has already finished, so hints are best-effort by construction: a
    neighbour still in flight simply yields a cold solve, never a stall.

    ``on_done`` receives the point's wall time as measured *inside* the
    worker (``runtime_s`` of the result record), so queueing delay behind
    other in-flight points is never billed to the point itself.

    ``on_error(index, error, traceback_text)`` handles a point whose own
    code raised.  Retry contract (shared by ``on_error``,
    ``on_interrupted`` and ``on_timeout``): return ``None`` to give the
    point up, or a delay in seconds >= 0 to re-enqueue it -- the driver
    will not start it again before the delay elapses (retry backoff).

    ``on_interrupted(index, error)`` handles a point that was in flight
    when a worker process *died* (OOM kill, segfault -- which breaks the
    whole pool and poisons every pending future, so the casualties include
    innocent points that merely shared the pool with the culprit).  The
    driver rebuilds the executor and keeps going.  One crashing worker can
    never take down the campaign.

    ``on_timeout(index)`` handles a point that exceeded ``timeout_s``.  In
    parallel mode this is a real parent-side watchdog: the pool's worker
    processes are terminated (a hung worker cannot be cancelled any other
    way) and the pool is rebuilt; innocent in-flight points go through
    ``on_interrupted``.  In serial mode the check is necessarily post hoc
    -- the parent *is* the worker -- so an overlong point is reported
    against ``on_timeout`` after it finishes and its result is discarded.

    ``on_tick(inflight_indices)`` runs every driver tick (bounded by
    ``WAIT_TICK_S``) and may return extra point indices to enqueue -- the
    campaign layer uses it to heartbeat its own leases and adopt stale
    points reclaimed from dead drivers.

    ``on_stop(index)`` marks one in-flight point when a stop signal
    (:class:`_StopRequested`, raised by the SIGINT/SIGTERM handlers that
    ``run_batch`` installs) lands: the driver kills the workers, reports
    every in-flight point to ``on_stop``, and re-raises -- no point is ever
    left looking ``running`` in a store after a clean shutdown.
    """
    queue = deque(indices)
    not_before: Dict[int, float] = {}

    def requeue(index: int, delay: Optional[float]) -> bool:
        """Apply one callback verdict; True when the point was re-enqueued."""
        if delay is None:
            return False
        if delay > 0.0:
            not_before[index] = time.monotonic() + delay
        queue.append(index)
        return True

    def pop_eligible() -> Optional[int]:
        """Next queued index whose backoff delay has elapsed, if any."""
        now = time.monotonic()
        for _ in range(len(queue)):
            index = queue.popleft()
            if not_before.get(index, 0.0) <= now:
                not_before.pop(index, None)
                return index
            queue.append(index)
        return None

    def run_tick(inflight: Set[int]) -> None:
        if on_tick is None:
            return
        for extra in on_tick(inflight) or ():
            if extra not in inflight and extra not in queue:
                queue.append(extra)

    if jobs == 1:
        while queue:
            run_tick(set())
            index = pop_eligible()
            if index is None:
                time.sleep(min(WAIT_TICK_S, 0.05))
                continue
            on_start(index)
            start = time.perf_counter()
            try:
                # Serial mode has no worker processes -- the driver is the
                # worker, so the worker.* chaos sites fire right here,
                # inside execute_point (a crash kills the driver, leaving
                # the running rows a later resume must reclaim; a hang
                # trips the post-hoc timeout).  The existing stage_cache
                # handle is passed through so its hit/miss counters keep
                # accumulating across the run.
                status, record = execute_point(
                    specs[index],
                    cache=stage_cache,
                    use_cache=use_cache,
                    warm_hint=warm_hint_for(index) if warm_hint_for else None,
                )
            except _StopRequested:
                if on_stop is not None:
                    on_stop(index)
                raise
            if status != "ok":
                requeue(
                    index,
                    on_error(index, record["error"], record.get("traceback", "")),
                )
                continue
            elapsed = time.perf_counter() - start
            if timeout_s is not None and on_timeout is not None and elapsed > timeout_s:
                requeue(index, on_timeout(index))
                continue
            on_done(index, record, elapsed)
        return

    cache_dir = str(stage_cache.root) if stage_cache.enabled else None
    max_inflight = jobs * INFLIGHT_PER_WORKER
    executor = ProcessPoolExecutor(max_workers=jobs, initializer=_worker_init)
    pending: Dict[object, int] = {}
    deadlines: Dict[object, float] = {}

    def consume(index: int, future: object) -> None:
        """Harvest one settled future into on_done / on_error."""
        try:
            status, record = future.result()
        except Exception as exc:  # transport failures (unpicklable, ...)
            requeue(index, on_error(index, f"{type(exc).__name__}: {exc}", ""))
            return
        if status == "ok":
            on_done(index, record, float(record.get("runtime_s", 0.0)))
        else:
            requeue(index, on_error(index, record["error"], record.get("traceback", "")))

    def settled_ok(future: object) -> bool:
        """Finished with a transportable outcome (not pool death/cancel)."""
        return (
            future.done()
            and not future.cancelled()
            and not isinstance(future.exception(), BrokenProcessPool)
        )

    def rebuild_pool(reason: str, overdue: Set[object]) -> None:
        """Watchdog / pool-death recovery: kill, reclassify, restart.

        Every in-flight future is classified exactly once: finished ones
        are consumed normally, overdue ones go to ``on_timeout``, the rest
        are innocent casualties of the teardown and go to
        ``on_interrupted``.
        """
        nonlocal executor
        _terminate_worker_processes(executor)
        executor.shutdown(wait=False, cancel_futures=True)
        casualties = dict(pending)
        pending.clear()
        deadlines.clear()
        executor = ProcessPoolExecutor(max_workers=jobs, initializer=_worker_init)
        for future, index in casualties.items():
            if settled_ok(future):
                consume(index, future)
            elif future in overdue and on_timeout is not None:
                requeue(index, on_timeout(index))
            else:
                requeue(index, on_interrupted(index, reason))

    clean = False
    try:
        while queue or pending:
            run_tick(set(pending.values()))
            while len(pending) < max_inflight:
                index = pop_eligible()
                if index is None:
                    break
                on_start(index)
                payload = _worker_payload(
                    specs[index],
                    cache_dir,
                    use_cache,
                    stage_cache.mmap_arrays,
                    warm_hint=warm_hint_for(index) if warm_hint_for else None,
                )
                future = executor.submit(_run_scenario_worker, payload)
                pending[future] = index
                if timeout_s is not None:
                    deadlines[future] = time.monotonic() + timeout_s
            if not pending:
                # Everything queued is backing off; idle one tick.
                time.sleep(min(WAIT_TICK_S, 0.05))
                continue
            done, _ = wait(pending, timeout=WAIT_TICK_S, return_when=FIRST_COMPLETED)
            pool_broken = False
            for future in done:
                index = pending.pop(future)
                deadlines.pop(future, None)
                if not isinstance(future.exception(), BrokenProcessPool):
                    consume(index, future)
                    continue
                # A worker process died.  The pool is now unusable: the
                # culprit cannot be identified, so treat this future and
                # everything still in flight as casualties, harvest what
                # finished before the death, and rebuild the pool so the
                # remaining queue keeps running.
                exc = future.exception()
                requeue(index, on_interrupted(index, f"worker process died: {exc}"))
                rebuild_pool(f"worker process died: {exc}", overdue=set())
                pool_broken = True
                break
            if pool_broken:
                continue
            if timeout_s is not None and deadlines:
                now = time.monotonic()
                overdue = {
                    future
                    for future, deadline in deadlines.items()
                    if deadline <= now and not future.done()
                }
                if overdue:
                    names = ", ".join(
                        repr(specs[pending[future]].name) for future in sorted(
                            overdue, key=lambda f: pending[f]
                        )
                    )
                    trace_event("batch.watchdog", overdue=len(overdue), points=names)
                    rebuild_pool(
                        "worker evicted by watchdog "
                        f"(pool torn down to kill overdue point(s) {names})",
                        overdue=overdue,
                    )
        clean = True
    except _StopRequested:
        _terminate_worker_processes(executor)
        if on_stop is not None:
            for index in pending.values():
                on_stop(index)
        pending.clear()
        raise
    finally:
        executor.shutdown(wait=clean, cancel_futures=not clean)


def run_batch(
    specs: Sequence[ScenarioSpec],
    cache: Union[StageCache, PathLike, None] = None,
    jobs: Optional[int] = None,
    results_path: Optional[PathLike] = None,
    use_cache: bool = True,
    parallel: bool = True,
    store: Union[ResultStore, PathLike, None] = None,
    campaign: Optional[str] = None,
    retries: int = 0,
    timeout_s: Optional[float] = None,
    retry_backoff_s: float = 0.0,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    warm_hints: Optional[Mapping[str, Tuple[str, bool]]] = None,
) -> BatchResult:
    """Execute a scenario fleet, optionally in parallel, and store results.

    Parameters
    ----------
    specs:
        The scenarios to run.  Names must be unique (they key the store).
    cache:
        Stage cache handle or directory shared by every worker.
    jobs:
        Worker-process count; defaults to ``min(len(specs), cpu_count)``.
        ``1`` (or ``parallel=False``) runs serially in-process.
    results_path:
        When given, one JSON record per scenario is written there (JSONL).
    use_cache:
        Set False to bypass the stage cache entirely.
    parallel:
        Convenience switch for forcing serial execution.
    store:
        A :class:`~repro.runner.store.ResultStore` (or database path) that
        turns the batch into a durable, resumable *campaign*; ``None`` (or
        the string ``"none"``) keeps the pure in-memory path.
    campaign:
        Campaign name within the store (default ``"batch"``).
    retries:
        How often a failed point is re-attempted within this run
        (store-backed campaigns only).
    timeout_s:
        Per-point wall-clock budget.  In parallel runs a parent-side
        watchdog terminates workers whose point overruns it (status
        ``timed_out``); serial runs check post hoc.  ``None`` disables.
    retry_backoff_s:
        Base delay between retry attempts of one point; doubles per
        attempt with deterministic jitter (:func:`retry_backoff_delay`).
        ``0`` (default) retries immediately, preserving prior behaviour.
    heartbeat_s:
        Campaign-mode cadence for refreshing this driver's ``running``-row
        heartbeats and scanning for stale rows abandoned by dead drivers.
    stale_after_s:
        Heartbeat age beyond which another driver's ``running`` row counts
        as abandoned and is reclaimed (then re-enqueued if it belongs to
        this fleet).
    warm_hints:
        Optional warm-start wiring: maps a scenario name to
        ``(neighbour_name, exact_prefix)`` -- when the point starts, its
        neighbour's finished placement (from this run or, in campaigns,
        from done store rows of earlier runs) is offered to the solver as
        a warm start.  Strictly best-effort and out-of-band: hints never
        enter spec digests, a missing neighbour means a cold solve, and
        ``exact_prefix`` must only be set when the neighbour differs
        solely by a smaller ``n_modules`` (the greedy replay contract).
        In campaigns the wiring is also persisted on the enrolled rows so
        detached fleet workers pick the same hints up.

    Example
    -------
    A one-scenario serial batch (parallel batches are bit-for-bit
    identical; ``use_cache=False`` keeps the example self-contained):

    >>> from repro.gis import RoofSpec
    >>> from repro.runner import run_batch
    >>> from repro.scenario import ScenarioSpec, TimeSpec
    >>> spec = ScenarioSpec(
    ...     name="doc-batch",
    ...     roof=RoofSpec(name="doc-roof", width_m=6.0, depth_m=4.0,
    ...                   tilt_deg=30.0, azimuth_deg=0.0),
    ...     n_modules=2, n_series=2, grid_pitch=0.4,
    ...     time=TimeSpec(step_minutes=240.0, day_stride=45),
    ... )
    >>> batch = run_batch([spec], parallel=False, use_cache=False)
    >>> batch.n_scenarios
    1
    >>> batch.results[0].annual_energy_mwh > 0
    True
    >>> sorted(batch.summary())  # doctest: +NORMALIZE_WHITESPACE
    ['cache_hits_by_stage', 'cache_misses_by_stage', 'campaign', 'jobs',
     'n_scenarios', 'results_path', 'runtime_s', 'total_energy_mwh']
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError("a batch needs at least one scenario")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError("scenario names within a batch must be unique")
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError("timeout_s must be > 0 when set")
    if retry_backoff_s < 0:
        raise ConfigurationError("retry_backoff_s must be >= 0")
    if heartbeat_s <= 0 or stale_after_s <= 0:
        raise ConfigurationError("heartbeat_s and stale_after_s must be > 0")

    # Arm fault injection from $REPRO_FAULTS in the parent as well (workers
    # arm themselves): parent-side sites (store.io, cache.corrupt on this
    # process's cache handle) fire here.  No-op without the env var.
    faults.configure_from_env()

    stage_cache = resolve_cache(cache, enabled=use_cache)
    # Workers reconstruct their cache handle from (dir, flag); the effective
    # flag honours both the handle's own state and the use_cache argument so
    # a disabled handle can never resurrect as an enabled default-dir cache.
    use_cache = stage_cache.enabled

    if jobs is None:
        jobs = min(len(specs), os.cpu_count() or 1)
    jobs = max(1, int(jobs))
    if not parallel:
        jobs = 1

    result_store = resolve_store(store)
    owns_store = result_store is not None and not isinstance(store, ResultStore)

    # Graceful-shutdown handlers: SIGTERM (orchestrators, `timeout`, k8s)
    # and SIGINT raise _StopRequested in the main thread, the driver marks
    # every in-flight point ``failed ("interrupted...")`` and kills its
    # workers, and the finally block below still closes the store and
    # merges trace shards -- so a terminated campaign resumes cleanly with
    # no orphaned ``running`` rows.  Signals can only be installed from the
    # main thread; elsewhere (tests driving batches from threads) the
    # process keeps its existing handlers.
    installed_handlers: List[Tuple[int, object]] = []
    if threading.current_thread() is threading.main_thread():

        def _stop_handler(signum: int, frame: object) -> None:
            raise _StopRequested(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed_handlers.append((signum, signal.signal(signum, _stop_handler)))
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass

    try:
        batch_attrs = {"n_scenarios": len(specs), "jobs": jobs}
        if result_store is not None:
            batch_attrs["campaign"] = campaign if campaign else DEFAULT_CAMPAIGN
        with span("batch", **batch_attrs):
            start = time.perf_counter()
            if result_store is None:
                results = _run_in_memory(
                    specs,
                    stage_cache,
                    use_cache,
                    jobs,
                    timeout_s,
                    retry_backoff_s,
                    warm_hints=warm_hints,
                )
                summary: Optional[CampaignSummary] = None
            else:
                results, summary = _run_campaign(
                    specs,
                    stage_cache,
                    use_cache,
                    jobs,
                    result_store,
                    campaign if campaign else DEFAULT_CAMPAIGN,
                    retries,
                    timeout_s=timeout_s,
                    retry_backoff_s=retry_backoff_s,
                    heartbeat_s=heartbeat_s,
                    stale_after_s=stale_after_s,
                    warm_hints=warm_hints,
                )
            runtime = time.perf_counter() - start
    except _StopRequested as stop:
        # Surface as the interruption Python users expect; the CLI maps it
        # to exit code 130.
        raise KeyboardInterrupt(
            f"batch interrupted by signal {stop.signum}; "
            "in-flight points marked failed ('interrupted')"
        ) from None
    finally:
        for signum, previous in installed_handlers:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        if owns_store:
            result_store.close()
        # Fold worker trace shards into the single merged trace; a no-op
        # while tracing is disabled.  The pool has drained by now (the
        # drivers shut their executors down), so every shard is complete.
        merge_active_trace()

    path: Optional[Path] = None
    if results_path is not None:
        path = Path(results_path)
        write_results_jsonl(results, path)

    return BatchResult(
        results=results,
        runtime_s=runtime,
        jobs=jobs,
        results_path=path,
        cache_dir=stage_cache.root if stage_cache.enabled else None,
        campaign=summary,
    )


def _run_in_memory(
    specs: Sequence[ScenarioSpec],
    stage_cache: StageCache,
    use_cache: bool,
    jobs: int,
    timeout_s: Optional[float] = None,
    retry_backoff_s: float = 0.0,
    warm_hints: Optional[Mapping[str, Tuple[str, bool]]] = None,
) -> List[ScenarioResult]:
    """The classic one-pass batch: any scenario failure aborts the run.

    The failure is wrapped in a :class:`ScenarioExecutionError` naming the
    point (scenario name + content digest) instead of surfacing a bare
    worker traceback.  A point exceeding ``timeout_s`` is a failure too --
    without a store there is nothing to retry against.
    """
    del retry_backoff_s  # no retries without a store; accepted for symmetry
    records: List[Optional[dict]] = [None] * len(specs)
    index_by_name = {spec.name: index for index, spec in enumerate(specs)}

    def warm_hint_for(index: int) -> Optional[dict]:
        if not warm_hints:
            return None
        target = warm_hints.get(specs[index].name)
        if target is None:
            return None
        neighbour_name, exact_prefix = target
        neighbour = index_by_name.get(neighbour_name)
        record = records[neighbour] if neighbour is not None else None
        if not record or not record.get("placement"):
            return None
        return {
            "placement": dict(record["placement"]),
            "exact_prefix": bool(exact_prefix),
            "source": neighbour_name,
        }

    def on_start(index: int) -> None:
        pass

    def on_done(index: int, record: dict, wall_time_s: float) -> None:
        records[index] = record

    def on_error(index: int, error: str, traceback_text: str) -> Optional[float]:
        name = specs[index].name
        digest = scenario_content_digest(specs[index])
        message = _point_error_message(name, digest, error)
        if traceback_text:
            message = f"{message}\n{traceback_text}"
        raise ScenarioExecutionError(message, scenario=name, digest=digest)

    def on_interrupted(index: int, error: str) -> Optional[float]:
        return on_error(index, error, "")

    def on_timeout(index: int) -> Optional[float]:
        return on_error(
            index, f"timed out: exceeded wall-clock budget of {timeout_s:g}s", ""
        )

    _drive_points(
        range(len(specs)),
        specs,
        stage_cache,
        use_cache,
        jobs,
        on_start,
        on_done,
        on_error,
        on_interrupted,
        on_timeout=on_timeout,
        timeout_s=timeout_s,
        warm_hint_for=warm_hint_for if warm_hints else None,
    )
    return [ScenarioResult.from_dict(record) for record in records]


def _run_campaign(
    specs: Sequence[ScenarioSpec],
    stage_cache: StageCache,
    use_cache: bool,
    jobs: int,
    store: ResultStore,
    campaign: str,
    retries: int,
    timeout_s: Optional[float] = None,
    retry_backoff_s: float = 0.0,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    warm_hints: Optional[Mapping[str, Tuple[str, bool]]] = None,
) -> Tuple[List[ScenarioResult], CampaignSummary]:
    """Store-backed execution: enroll, skip done, retry failures, account."""
    enrolled = store.enroll(campaign, specs, warm_hints=warm_hints)
    store.reset_running(campaign)
    digests = [record.digest for record in enrolled]
    index_by_digest = {digest: index for index, digest in enumerate(digests)}
    index_by_name = {spec.name: index for index, spec in enumerate(specs)}

    def warm_hint_for(index: int) -> Optional[dict]:
        if not warm_hints:
            return None
        target = warm_hints.get(specs[index].name)
        if target is None:
            return None
        neighbour_name, exact_prefix = target
        neighbour = index_by_name.get(neighbour_name)
        if neighbour is None:
            return None
        placement: Optional[dict] = None
        if neighbour in computed:
            placement = dict(computed[neighbour].placement)
        else:
            # A resumed campaign may hold the neighbour from an earlier run.
            record = store.find_done(digests[neighbour])
            if record is not None:
                placement = dict(record.result().placement)
        if not placement:
            return None
        return {
            "placement": placement,
            "exact_prefix": bool(exact_prefix),
            "source": neighbour_name,
        }

    todo = [i for i, record in enumerate(enrolled) if record.status != STATUS_DONE]
    summary = CampaignSummary(
        campaign=campaign,
        n_points=len(specs),
        skipped=len(specs) - len(todo),
    )
    attempts_this_run: Dict[int, int] = {}
    interruptions: Dict[int, int] = {}
    computed: Dict[int, ScenarioResult] = {}

    def backoff(index: int) -> float:
        return retry_backoff_delay(
            retry_backoff_s, attempts_this_run.get(index, 1) - 1, digests[index]
        )

    def on_start(index: int) -> None:
        store.mark_running(campaign, digests[index])

    def on_done(index: int, record: dict, wall_time_s: float) -> None:
        store.mark_done(campaign, digests[index], record, wall_time_s)
        computed[index] = ScenarioResult.from_dict(record)

    def on_error(index: int, error: str, traceback_text: str) -> Optional[float]:
        message = _point_error_message(specs[index].name, digests[index], error)
        if traceback_text:
            message = f"{message}\n{traceback_text}"
        store.mark_failed(campaign, digests[index], message)
        attempt = attempts_this_run.get(index, 0)
        if attempt < retries:
            attempts_this_run[index] = attempt + 1
            summary.retried += 1
            return backoff(index)
        return None

    def on_timeout(index: int) -> Optional[float]:
        # Terminal state is ``timed_out`` (distinct from ``failed``), but a
        # timed-out point still draws on the same retry budget -- transient
        # load spikes deserve another attempt.
        message = _point_error_message(
            specs[index].name,
            digests[index],
            f"timed out: exceeded wall-clock budget of {timeout_s:g}s",
        )
        store.mark_timed_out(campaign, digests[index], message)
        attempt = attempts_this_run.get(index, 0)
        if attempt < retries:
            attempts_this_run[index] = attempt + 1
            summary.retried += 1
            return backoff(index)
        return None

    def on_interrupted(index: int, error: str) -> Optional[float]:
        # A worker death poisons every in-flight future, so most casualties
        # are innocent bystanders of the culprit point (which cannot be
        # identified).  Re-enqueue them without charging the error-retry
        # budget, but bound the free passes so a point that deterministically
        # kills its worker (e.g. per-point OOM) cannot loop forever.
        message = _point_error_message(specs[index].name, digests[index], error)
        store.mark_failed(campaign, digests[index], message)
        count = interruptions.get(index, 0) + 1
        interruptions[index] = count
        if count <= retries + 1:
            summary.retried += 1
            return retry_backoff_delay(retry_backoff_s, count - 1, digests[index])
        return None

    def on_stop(index: int) -> None:
        # Signal-time marking: the point was in flight when SIGTERM/SIGINT
        # landed.  The literal "interrupted" makes these rows discoverable
        # (and reclaimable by `campaign doctor` / the next resume).
        store.mark_failed(
            campaign,
            digests[index],
            _point_error_message(
                specs[index].name, digests[index], "interrupted: terminated by signal"
            ),
        )

    last_beat = [float("-inf")]

    def on_tick(inflight: Set[int]) -> Sequence[int]:
        # Liveness bookkeeping, rate-limited to the heartbeat cadence: (1)
        # refresh our own running rows so concurrent drivers never reclaim
        # them, (2) reclaim rows whose owner went silent and adopt the ones
        # that belong to this fleet.
        now = time.monotonic()
        if now - last_beat[0] < heartbeat_s:
            return ()
        last_beat[0] = now
        if inflight:
            store.heartbeat(campaign, [digests[index] for index in inflight])
        adopted: List[int] = []
        for digest in store.reclaim_stale(campaign, stale_after_s):
            index = index_by_digest.get(digest)
            if index is None or index in computed or index in inflight:
                continue
            summary.reclaimed += 1
            adopted.append(index)
        return adopted

    _drive_points(
        todo,
        specs,
        stage_cache,
        use_cache,
        jobs,
        on_start,
        on_done,
        on_error,
        on_interrupted,
        on_timeout=on_timeout,
        on_stop=on_stop,
        on_tick=on_tick,
        timeout_s=timeout_s,
        warm_hint_for=warm_hint_for if warm_hints else None,
    )

    summary.computed = len(computed)
    computed_results = [computed[i] for i in sorted(computed)]
    summary.stage_hits = count_stage_flags(computed_results, cached=True)
    summary.stage_recomputes = count_stage_flags(computed_results, cached=False)
    summary.stage_hit_time_s = {
        stage: round(seconds, 6)
        for stage, seconds in sum_stage_times(computed_results, cached=True).items()
    }
    summary.stage_recompute_time_s = {
        stage: round(seconds, 6)
        for stage, seconds in sum_stage_times(computed_results, cached=False).items()
    }

    # Assemble results in input order -- freshly computed points from this
    # run, previously-done points reloaded from the store -- and count
    # done/timed_out/failed over *this fleet's* digests (a campaign may
    # hold further points from earlier enrollments; `repro campaign status`
    # shows those).  ``degraded`` counts done points answered by a fallback
    # solver, whether computed now or reloaded.
    results: List[ScenarioResult] = []
    for index, digest in enumerate(digests):
        if index in computed:
            summary.done += 1
            if computed[index].degraded:
                summary.degraded += 1
            results.append(computed[index])
            continue
        record = store.point(campaign, digest)
        if record.status == STATUS_DONE:
            summary.done += 1
            if record.degraded:
                summary.degraded += 1
            results.append(record.result())
        elif record.status == STATUS_TIMED_OUT:
            summary.timed_out += 1
        else:
            summary.failed += 1

    # Persist this run's latency rollups so `repro campaign status` can
    # render a per-stage p50/p90/p99 table long after the run finished.
    # Pure no-op resumes (computed == 0) record nothing: there are no new
    # samples, and the previous run's rows stay the latest.
    if computed_results:
        store.record_metrics(campaign, _campaign_metric_rows(computed_results, summary))
    return results, summary


def _campaign_metric_rows(
    computed_results: Sequence[ScenarioResult], summary: CampaignSummary
) -> List[Tuple[str, MetricStats]]:
    """Roll one campaign run's computed points up into metric-table rows."""
    rows: List[Tuple[str, MetricStats]] = []

    stage_samples: Dict[str, List[float]] = {}
    hit_samples: Dict[str, List[float]] = {}
    recompute_samples: Dict[str, List[float]] = {}
    for result in computed_results:
        for stage, seconds in result.stage_times_s.items():
            stage_samples.setdefault(stage, []).append(seconds)
        for stage, hit in result.stage_cached.items():
            seconds = result.stage_times_s.get(stage)
            if seconds is None:
                continue
            bucket = hit_samples if hit else recompute_samples
            bucket.setdefault(stage, []).append(seconds)

    for kind, samples_by_stage in (
        (METRIC_KIND_STAGE_TIME, stage_samples),
        (METRIC_KIND_STAGE_HIT_TIME, hit_samples),
        (METRIC_KIND_STAGE_RECOMPUTE_TIME, recompute_samples),
    ):
        for stage in sorted(samples_by_stage):
            rows.append((kind, MetricStats.from_samples(stage, samples_by_stage[stage])))

    rows.append(
        (
            METRIC_KIND_POINT_TIME,
            MetricStats.from_samples(
                "point", [result.runtime_s for result in computed_results]
            ),
        )
    )
    for counter, value in (
        ("computed", summary.computed),
        ("skipped", summary.skipped),
        ("failed", summary.failed),
        ("retried", summary.retried),
        ("timed_out", summary.timed_out),
        ("degraded", summary.degraded),
        ("reclaimed", summary.reclaimed),
        ("cache_stage_hits", sum(summary.stage_hits.values())),
        ("cache_stage_recomputes", sum(summary.stage_recomputes.values())),
    ):
        rows.append((METRIC_KIND_COUNTER, MetricStats.from_count(counter, value)))
    return rows


def write_results_jsonl(results: Sequence[ScenarioResult], path: PathLike) -> None:
    """Write one JSON record per scenario result (JSONL store)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")


def read_results_jsonl(path: PathLike) -> List[ScenarioResult]:
    """Read a JSONL results store back into :class:`ScenarioResult` objects."""
    results: List[ScenarioResult] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                results.append(ScenarioResult.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed results record at {path}:{line_number}: {exc}"
                ) from exc
    return results
