"""Parallel batch execution of scenario fleets, with durable campaigns.

The batch runner executes a list of :class:`~repro.scenario.ScenarioSpec`
in a :class:`~concurrent.futures.ProcessPoolExecutor` and appends one JSON
record per scenario to a JSONL results store.  The worker transport is
zero-copy by construction: each submission carries only the scenario's
declarative dictionary plus the cache *location* (a directory path -- the
content keys are recomputed inside the worker), never a pickled irradiance
array or any other bulk simulation object; workers attach to the shared
on-disk stage cache, whose bulk arrays they memory-map read-only (see
:mod:`repro.runner.cache`).  The first scenario that needs a given solar
field computes and publishes it, all later scenarios -- in this run or the
next -- hit the cache.

Submission is chunked and completion-streamed: at most a small multiple of
the worker count is in flight at any moment (so huge fleets do not pile up
thousands of pending futures) and finished results are collected with
``concurrent.futures.wait`` as they complete instead of the ``executor.map``
barrier.  Results are still returned in input order regardless of completion
order, and all scenario inputs are seeded, so a parallel batch is
bit-for-bit identical to a serial one.

Campaigns
---------
Passing ``store=`` turns the batch into a *campaign*: every point is first
enrolled in a SQLite-backed :class:`~repro.runner.store.ResultStore` (keyed
by its scenario content digest), points already ``done`` from a previous
run are skipped, failures are recorded per-point -- a worker exception or
even a worker *death* fails only its own point, never the whole run -- and
failed points are retried up to ``retries`` times.  The returned
:class:`BatchResult` then carries a
:class:`~repro.runner.store.CampaignSummary` with done/computed/skipped/
failed/retried accounting plus the per-stage cache provenance of the
points computed by this invocation.  Without a store the behaviour is the
classic in-memory pass, where the first scenario failure raises a
:class:`~repro.errors.ScenarioExecutionError` naming the failing point.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, ScenarioExecutionError
from ..scenario.spec import ScenarioSpec
from ..telemetry import MetricStats, configure_from_env, merge_active_trace, span
from .cache import PathLike, StageCache, resolve_cache
from .stages import ScenarioResult, run_scenario, scenario_content_digest
from .store import (
    METRIC_KIND_COUNTER,
    METRIC_KIND_POINT_TIME,
    METRIC_KIND_STAGE_HIT_TIME,
    METRIC_KIND_STAGE_RECOMPUTE_TIME,
    METRIC_KIND_STAGE_TIME,
    STATUS_DONE,
    CampaignSummary,
    ResultStore,
    resolve_store,
)

#: In-flight submissions per worker process: enough to keep every worker
#: busy while results stream back, small enough that a 10k-scenario fleet
#: does not materialise 10k pending futures up front.
INFLIGHT_PER_WORKER = 2

#: Campaign name used when ``run_batch`` gets a store but no explicit name.
DEFAULT_CAMPAIGN = "batch"


def count_stage_flags(
    results: Sequence[ScenarioResult], cached: bool
) -> Dict[str, int]:
    """Tally per-stage cache provenance across scenario results.

    ``cached=True`` counts results whose stage was served from the cache,
    ``cached=False`` counts recomputations.  Every stage that appears in any
    result's provenance map gets an entry (possibly zero), so hit and miss
    tallies always cover the same stage set.  Shared by the batch- and
    sweep-level accounting so the two can never drift apart.
    """
    counts: Dict[str, int] = {}
    for result in results:
        for stage, hit in result.stage_cached.items():
            counts[stage] = counts.get(stage, 0) + (1 if hit == cached else 0)
    return counts


def sum_stage_times(
    results: Sequence[ScenarioResult], cached: bool
) -> Dict[str, float]:
    """Sum per-stage wall time across results, split by cache provenance.

    The wall-clock counterpart of :func:`count_stage_flags`: ``cached=True``
    totals the seconds spent *loading* cached stages, ``cached=False`` the
    seconds spent recomputing them, keyed over the same stage set so the
    time and count accounting can never drift apart.
    """
    totals: Dict[str, float] = {}
    for result in results:
        for stage, hit in result.stage_cached.items():
            seconds = result.stage_times_s.get(stage, 0.0) if hit == cached else 0.0
            totals[stage] = totals.get(stage, 0.0) + seconds
    return totals


@dataclass
class BatchResult:
    """Outcome of one batch run."""

    results: List[ScenarioResult]
    runtime_s: float
    jobs: int
    results_path: Optional[Path] = None
    cache_dir: Optional[Path] = None
    campaign: Optional[CampaignSummary] = None

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios with results (computed or reloaded)."""
        return len(self.results)

    def by_name(self) -> Dict[str, ScenarioResult]:
        """Results keyed by scenario name."""
        return {result.scenario: result for result in self.results}

    def cache_hit_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios served from the cache."""
        return count_stage_flags(self.results, cached=True)

    def cache_miss_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios that *recomputed* the stage.

        The complement of :meth:`cache_hit_counts` over the same provenance
        records: ``misses[stage]`` scenarios had to recompute ``stage``
        because no cache entry existed (or the cache was disabled).  A warm
        re-run of an unchanged fleet must report zero misses for every
        expensive stage -- the sweep engine's reuse accounting asserts
        exactly that.
        """
        return count_stage_flags(self.results, cached=False)

    def summary(self) -> dict:
        """Aggregate figures for reports and the CLI."""
        return {
            "n_scenarios": self.n_scenarios,
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "total_energy_mwh": sum(r.annual_energy_mwh for r in self.results),
            "cache_hits_by_stage": self.cache_hit_counts(),
            "cache_misses_by_stage": self.cache_miss_counts(),
            "results_path": None if self.results_path is None else str(self.results_path),
            "campaign": None if self.campaign is None else self.campaign.as_dict(),
        }


def _worker_payload(
    spec: ScenarioSpec,
    cache_dir: Optional[str],
    use_cache: bool,
    mmap_arrays: bool = True,
) -> Tuple[dict, Optional[str], bool, bool]:
    """The pickled work unit shipped to one worker process.

    Deliberately tiny: the declarative scenario dictionary and the cache
    *location* (plus its memmap flag).  Workers rederive every content key
    from the spec and pull bulk arrays from the shared cache
    (memory-mapped), so no irradiance matrix -- or any other numpy payload
    -- ever crosses the process boundary.  A test asserts the serialised
    size stays in the kilobytes.
    """
    return (spec.to_dict(), cache_dir, use_cache, mmap_arrays)


def _run_scenario_worker(args: tuple) -> Tuple[str, dict]:
    """Process-pool entry point: rebuild the spec, run it, return a record.

    Returns ``("ok", result_record)`` on success and
    ``("error", {"error", "traceback"})`` when the scenario raises, so an
    exception inside a worker never tears down the pool and the parent can
    attribute the failure to its point (name + digest) instead of surfacing
    a bare pool traceback.
    """
    # The batch already parallelises across processes; keep the horizon
    # kernel single-threaded inside each worker to avoid oversubscription.
    os.environ.setdefault("REPRO_HORIZON_WORKERS", "1")
    # Tracing propagates through $REPRO_TRACE (set by telemetry.configure in
    # the parent): forked workers already hold a re-keyed tracer via the
    # at-fork hook, spawned workers pick the path up here.  Each worker
    # writes its own shard; the parent merges at drain time.
    configure_from_env()
    spec_dict, cache_dir, use_cache, mmap_arrays = args
    try:
        spec = ScenarioSpec.from_dict(spec_dict)
        cache = (
            StageCache(root=Path(cache_dir), enabled=use_cache, mmap_arrays=mmap_arrays)
            if cache_dir
            else None
        )
        result = run_scenario(spec, cache=cache, use_cache=use_cache)
        return ("ok", result.to_dict())
    except Exception as exc:
        return (
            "error",
            {
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            },
        )


def _point_error_message(name: str, digest: str, error: str) -> str:
    """Failure text attributing a worker error to its campaign point."""
    return f"scenario {name!r} (digest {digest[:12]}) failed: {error}"


def _drive_points(
    indices: Sequence[int],
    specs: Sequence[ScenarioSpec],
    stage_cache: StageCache,
    use_cache: bool,
    jobs: int,
    on_start: Callable[[int], None],
    on_done: Callable[[int, dict, float], None],
    on_error: Callable[[int, str, str], bool],
    on_interrupted: Callable[[int, str], bool],
) -> None:
    """Execute the points at ``indices``, serially or in worker processes.

    ``on_done`` receives the point's wall time as measured *inside* the
    worker (``runtime_s`` of the result record), so queueing delay behind
    other in-flight points is never billed to the point itself.

    ``on_error(index, error, traceback_text)`` handles a point whose own
    code raised; returning True re-enqueues it (a retry).

    ``on_interrupted(index, error)`` handles a point that was in flight
    when a worker process *died* (OOM kill, segfault -- which breaks the
    whole pool and poisons every pending future, so the casualties include
    innocent points that merely shared the pool with the culprit).  The
    driver rebuilds the executor and keeps going; returning True re-enqueues
    the casualty.  One crashing worker can never take down the campaign.
    """
    queue = deque(indices)

    if jobs == 1:
        while queue:
            index = queue.popleft()
            on_start(index)
            start = time.perf_counter()
            try:
                record = run_scenario(
                    specs[index], cache=stage_cache, use_cache=use_cache
                ).to_dict()
            except Exception as exc:
                if on_error(index, f"{type(exc).__name__}: {exc}", traceback.format_exc()):
                    queue.append(index)
                continue
            on_done(index, record, time.perf_counter() - start)
        return

    cache_dir = str(stage_cache.root) if stage_cache.enabled else None
    max_inflight = jobs * INFLIGHT_PER_WORKER
    executor = ProcessPoolExecutor(max_workers=jobs)
    pending: Dict[object, int] = {}

    def consume(index: int, future: object) -> None:
        """Harvest one settled future into on_done / on_error."""
        try:
            status, record = future.result()
        except Exception as exc:  # transport failures (unpicklable, ...)
            if on_error(index, f"{type(exc).__name__}: {exc}", ""):
                queue.append(index)
            return
        if status == "ok":
            on_done(index, record, float(record.get("runtime_s", 0.0)))
        else:
            if on_error(index, record["error"], record.get("traceback", "")):
                queue.append(index)

    try:
        while queue or pending:
            while queue and len(pending) < max_inflight:
                index = queue.popleft()
                on_start(index)
                payload = _worker_payload(
                    specs[index], cache_dir, use_cache, stage_cache.mmap_arrays
                )
                pending[executor.submit(_run_scenario_worker, payload)] = index
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                if not isinstance(future.exception(), BrokenProcessPool):
                    consume(index, future)
                    continue
                # A worker process died.  The pool is now unusable: harvest
                # in-flight futures that did complete before the death, hand
                # the rest to on_interrupted individually, and rebuild the
                # pool so the remaining queue keeps running.
                exc = future.exception()
                broken = [index]
                finished = []
                for other, other_index in pending.items():
                    if other.done() and not isinstance(
                        other.exception(), BrokenProcessPool
                    ):
                        finished.append((other_index, other))
                    else:
                        broken.append(other_index)
                pending.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=jobs)
                for other_index, other in finished:
                    consume(other_index, other)
                for broken_index in broken:
                    if on_interrupted(broken_index, f"worker process died: {exc}"):
                        queue.append(broken_index)
                break
    finally:
        executor.shutdown()


def run_batch(
    specs: Sequence[ScenarioSpec],
    cache: Union[StageCache, PathLike, None] = None,
    jobs: Optional[int] = None,
    results_path: Optional[PathLike] = None,
    use_cache: bool = True,
    parallel: bool = True,
    store: Union[ResultStore, PathLike, None] = None,
    campaign: Optional[str] = None,
    retries: int = 0,
) -> BatchResult:
    """Execute a scenario fleet, optionally in parallel, and store results.

    Parameters
    ----------
    specs:
        The scenarios to run.  Names must be unique (they key the store).
    cache:
        Stage cache handle or directory shared by every worker.
    jobs:
        Worker-process count; defaults to ``min(len(specs), cpu_count)``.
        ``1`` (or ``parallel=False``) runs serially in-process.
    results_path:
        When given, one JSON record per scenario is written there (JSONL).
    use_cache:
        Set False to bypass the stage cache entirely.
    parallel:
        Convenience switch for forcing serial execution.
    store:
        A :class:`~repro.runner.store.ResultStore` (or database path) that
        turns the batch into a durable, resumable *campaign*; ``None`` (or
        the string ``"none"``) keeps the pure in-memory path.
    campaign:
        Campaign name within the store (default ``"batch"``).
    retries:
        How often a failed point is re-attempted within this run
        (store-backed campaigns only).

    Example
    -------
    A one-scenario serial batch (parallel batches are bit-for-bit
    identical; ``use_cache=False`` keeps the example self-contained):

    >>> from repro.gis import RoofSpec
    >>> from repro.runner import run_batch
    >>> from repro.scenario import ScenarioSpec, TimeSpec
    >>> spec = ScenarioSpec(
    ...     name="doc-batch",
    ...     roof=RoofSpec(name="doc-roof", width_m=6.0, depth_m=4.0,
    ...                   tilt_deg=30.0, azimuth_deg=0.0),
    ...     n_modules=2, n_series=2, grid_pitch=0.4,
    ...     time=TimeSpec(step_minutes=240.0, day_stride=45),
    ... )
    >>> batch = run_batch([spec], parallel=False, use_cache=False)
    >>> batch.n_scenarios
    1
    >>> batch.results[0].annual_energy_mwh > 0
    True
    >>> sorted(batch.summary())  # doctest: +NORMALIZE_WHITESPACE
    ['cache_hits_by_stage', 'cache_misses_by_stage', 'campaign', 'jobs',
     'n_scenarios', 'results_path', 'runtime_s', 'total_energy_mwh']
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError("a batch needs at least one scenario")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError("scenario names within a batch must be unique")
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")

    stage_cache = resolve_cache(cache, enabled=use_cache)
    # Workers reconstruct their cache handle from (dir, flag); the effective
    # flag honours both the handle's own state and the use_cache argument so
    # a disabled handle can never resurrect as an enabled default-dir cache.
    use_cache = stage_cache.enabled

    if jobs is None:
        jobs = min(len(specs), os.cpu_count() or 1)
    jobs = max(1, int(jobs))
    if not parallel:
        jobs = 1

    result_store = resolve_store(store)
    owns_store = result_store is not None and not isinstance(store, ResultStore)
    try:
        batch_attrs = {"n_scenarios": len(specs), "jobs": jobs}
        if result_store is not None:
            batch_attrs["campaign"] = campaign if campaign else DEFAULT_CAMPAIGN
        with span("batch", **batch_attrs):
            start = time.perf_counter()
            if result_store is None:
                results = _run_in_memory(specs, stage_cache, use_cache, jobs)
                summary: Optional[CampaignSummary] = None
            else:
                results, summary = _run_campaign(
                    specs,
                    stage_cache,
                    use_cache,
                    jobs,
                    result_store,
                    campaign if campaign else DEFAULT_CAMPAIGN,
                    retries,
                )
            runtime = time.perf_counter() - start
    finally:
        if owns_store:
            result_store.close()
        # Fold worker trace shards into the single merged trace; a no-op
        # while tracing is disabled.  The pool has drained by now (the
        # drivers shut their executors down), so every shard is complete.
        merge_active_trace()

    path: Optional[Path] = None
    if results_path is not None:
        path = Path(results_path)
        write_results_jsonl(results, path)

    return BatchResult(
        results=results,
        runtime_s=runtime,
        jobs=jobs,
        results_path=path,
        cache_dir=stage_cache.root if stage_cache.enabled else None,
        campaign=summary,
    )


def _run_in_memory(
    specs: Sequence[ScenarioSpec],
    stage_cache: StageCache,
    use_cache: bool,
    jobs: int,
) -> List[ScenarioResult]:
    """The classic one-pass batch: any scenario failure aborts the run.

    The failure is wrapped in a :class:`ScenarioExecutionError` naming the
    point (scenario name + content digest) instead of surfacing a bare
    worker traceback.
    """
    records: List[Optional[dict]] = [None] * len(specs)

    def on_start(index: int) -> None:
        pass

    def on_done(index: int, record: dict, wall_time_s: float) -> None:
        records[index] = record

    def on_error(index: int, error: str, traceback_text: str) -> bool:
        name = specs[index].name
        digest = scenario_content_digest(specs[index])
        message = _point_error_message(name, digest, error)
        if traceback_text:
            message = f"{message}\n{traceback_text}"
        raise ScenarioExecutionError(message, scenario=name, digest=digest)

    def on_interrupted(index: int, error: str) -> bool:
        return on_error(index, error, "")

    _drive_points(
        range(len(specs)),
        specs,
        stage_cache,
        use_cache,
        jobs,
        on_start,
        on_done,
        on_error,
        on_interrupted,
    )
    return [ScenarioResult.from_dict(record) for record in records]


def _run_campaign(
    specs: Sequence[ScenarioSpec],
    stage_cache: StageCache,
    use_cache: bool,
    jobs: int,
    store: ResultStore,
    campaign: str,
    retries: int,
) -> Tuple[List[ScenarioResult], CampaignSummary]:
    """Store-backed execution: enroll, skip done, retry failures, account."""
    enrolled = store.enroll(campaign, specs)
    store.reset_running(campaign)
    digests = [record.digest for record in enrolled]

    todo = [i for i, record in enumerate(enrolled) if record.status != STATUS_DONE]
    summary = CampaignSummary(
        campaign=campaign,
        n_points=len(specs),
        skipped=len(specs) - len(todo),
    )
    attempts_this_run: Dict[int, int] = {}
    interruptions: Dict[int, int] = {}
    computed: Dict[int, ScenarioResult] = {}

    def on_start(index: int) -> None:
        store.mark_running(campaign, digests[index])

    def on_done(index: int, record: dict, wall_time_s: float) -> None:
        store.mark_done(campaign, digests[index], record, wall_time_s)
        computed[index] = ScenarioResult.from_dict(record)

    def on_error(index: int, error: str, traceback_text: str) -> bool:
        message = _point_error_message(specs[index].name, digests[index], error)
        if traceback_text:
            message = f"{message}\n{traceback_text}"
        store.mark_failed(campaign, digests[index], message)
        attempt = attempts_this_run.get(index, 0)
        if attempt < retries:
            attempts_this_run[index] = attempt + 1
            summary.retried += 1
            return True
        return False

    def on_interrupted(index: int, error: str) -> bool:
        # A worker death poisons every in-flight future, so most casualties
        # are innocent bystanders of the culprit point (which cannot be
        # identified).  Re-enqueue them without charging the error-retry
        # budget, but bound the free passes so a point that deterministically
        # kills its worker (e.g. per-point OOM) cannot loop forever.
        message = _point_error_message(specs[index].name, digests[index], error)
        store.mark_failed(campaign, digests[index], message)
        count = interruptions.get(index, 0) + 1
        interruptions[index] = count
        if count <= retries + 1:
            summary.retried += 1
            return True
        return False

    _drive_points(
        todo,
        specs,
        stage_cache,
        use_cache,
        jobs,
        on_start,
        on_done,
        on_error,
        on_interrupted,
    )

    summary.computed = len(computed)
    computed_results = [computed[i] for i in sorted(computed)]
    summary.stage_hits = count_stage_flags(computed_results, cached=True)
    summary.stage_recomputes = count_stage_flags(computed_results, cached=False)
    summary.stage_hit_time_s = {
        stage: round(seconds, 6)
        for stage, seconds in sum_stage_times(computed_results, cached=True).items()
    }
    summary.stage_recompute_time_s = {
        stage: round(seconds, 6)
        for stage, seconds in sum_stage_times(computed_results, cached=False).items()
    }

    # Assemble results in input order -- freshly computed points from this
    # run, previously-done points reloaded from the store -- and count
    # done/failed over *this fleet's* digests (a campaign may hold further
    # points from earlier enrollments; `repro campaign status` shows those).
    results: List[ScenarioResult] = []
    for index, digest in enumerate(digests):
        if index in computed:
            summary.done += 1
            results.append(computed[index])
            continue
        record = store.point(campaign, digest)
        if record.status == STATUS_DONE:
            summary.done += 1
            results.append(record.result())
        else:
            summary.failed += 1

    # Persist this run's latency rollups so `repro campaign status` can
    # render a per-stage p50/p90/p99 table long after the run finished.
    # Pure no-op resumes (computed == 0) record nothing: there are no new
    # samples, and the previous run's rows stay the latest.
    if computed_results:
        store.record_metrics(campaign, _campaign_metric_rows(computed_results, summary))
    return results, summary


def _campaign_metric_rows(
    computed_results: Sequence[ScenarioResult], summary: CampaignSummary
) -> List[Tuple[str, MetricStats]]:
    """Roll one campaign run's computed points up into metric-table rows."""
    rows: List[Tuple[str, MetricStats]] = []

    stage_samples: Dict[str, List[float]] = {}
    hit_samples: Dict[str, List[float]] = {}
    recompute_samples: Dict[str, List[float]] = {}
    for result in computed_results:
        for stage, seconds in result.stage_times_s.items():
            stage_samples.setdefault(stage, []).append(seconds)
        for stage, hit in result.stage_cached.items():
            seconds = result.stage_times_s.get(stage)
            if seconds is None:
                continue
            bucket = hit_samples if hit else recompute_samples
            bucket.setdefault(stage, []).append(seconds)

    for kind, samples_by_stage in (
        (METRIC_KIND_STAGE_TIME, stage_samples),
        (METRIC_KIND_STAGE_HIT_TIME, hit_samples),
        (METRIC_KIND_STAGE_RECOMPUTE_TIME, recompute_samples),
    ):
        for stage in sorted(samples_by_stage):
            rows.append((kind, MetricStats.from_samples(stage, samples_by_stage[stage])))

    rows.append(
        (
            METRIC_KIND_POINT_TIME,
            MetricStats.from_samples(
                "point", [result.runtime_s for result in computed_results]
            ),
        )
    )
    for counter, value in (
        ("computed", summary.computed),
        ("skipped", summary.skipped),
        ("failed", summary.failed),
        ("retried", summary.retried),
        ("cache_stage_hits", sum(summary.stage_hits.values())),
        ("cache_stage_recomputes", sum(summary.stage_recomputes.values())),
    ):
        rows.append((METRIC_KIND_COUNTER, MetricStats.from_count(counter, value)))
    return rows


def write_results_jsonl(results: Sequence[ScenarioResult], path: PathLike) -> None:
    """Write one JSON record per scenario result (JSONL store)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")


def read_results_jsonl(path: PathLike) -> List[ScenarioResult]:
    """Read a JSONL results store back into :class:`ScenarioResult` objects."""
    results: List[ScenarioResult] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                results.append(ScenarioResult.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed results record at {path}:{line_number}: {exc}"
                ) from exc
    return results
