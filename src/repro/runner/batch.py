"""Parallel batch execution of scenario fleets.

The batch runner executes a list of :class:`~repro.scenario.ScenarioSpec`
in a :class:`~concurrent.futures.ProcessPoolExecutor` and appends one JSON
record per scenario to a JSONL results store.  Scenarios are shipped to the
workers in their declarative dictionary form (no heavyweight pickling), and
every worker shares the same on-disk stage cache: the first scenario that
needs a given solar field computes and publishes it, all later scenarios --
in this run or the next -- hit the cache.  Results are returned in input
order regardless of completion order, and all scenario inputs are seeded,
so a parallel batch is bit-for-bit identical to a serial one.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..scenario.spec import ScenarioSpec
from .cache import PathLike, StageCache, resolve_cache
from .stages import ScenarioResult, run_scenario


@dataclass
class BatchResult:
    """Outcome of one batch run."""

    results: List[ScenarioResult]
    runtime_s: float
    jobs: int
    results_path: Optional[Path] = None
    cache_dir: Optional[Path] = None

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios executed."""
        return len(self.results)

    def by_name(self) -> Dict[str, ScenarioResult]:
        """Results keyed by scenario name."""
        return {result.scenario: result for result in self.results}

    def cache_hit_counts(self) -> Dict[str, int]:
        """Per-stage count of scenarios served from the cache."""
        counts: Dict[str, int] = {}
        for result in self.results:
            for stage, hit in result.stage_cached.items():
                counts[stage] = counts.get(stage, 0) + (1 if hit else 0)
        return counts

    def summary(self) -> dict:
        """Aggregate figures for reports and the CLI."""
        return {
            "n_scenarios": self.n_scenarios,
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "total_energy_mwh": sum(r.annual_energy_mwh for r in self.results),
            "cache_hits_by_stage": self.cache_hit_counts(),
            "results_path": None if self.results_path is None else str(self.results_path),
        }


def _run_scenario_worker(args: tuple) -> dict:
    """Process-pool entry point: rebuild the spec, run it, return a record."""
    # The batch already parallelises across processes; keep the horizon
    # kernel single-threaded inside each worker to avoid oversubscription.
    os.environ.setdefault("REPRO_HORIZON_WORKERS", "1")
    spec_dict, cache_dir, use_cache = args
    spec = ScenarioSpec.from_dict(spec_dict)
    cache = StageCache(root=Path(cache_dir), enabled=use_cache) if cache_dir else None
    result = run_scenario(spec, cache=cache, use_cache=use_cache)
    return result.to_dict()


def run_batch(
    specs: Sequence[ScenarioSpec],
    cache: Union[StageCache, PathLike, None] = None,
    jobs: Optional[int] = None,
    results_path: Optional[PathLike] = None,
    use_cache: bool = True,
    parallel: bool = True,
) -> BatchResult:
    """Execute a scenario fleet, optionally in parallel, and store results.

    Parameters
    ----------
    specs:
        The scenarios to run.  Names must be unique (they key the store).
    cache:
        Stage cache handle or directory shared by every worker.
    jobs:
        Worker-process count; defaults to ``min(len(specs), cpu_count)``.
        ``1`` (or ``parallel=False``) runs serially in-process.
    results_path:
        When given, one JSON record per scenario is written there (JSONL).
    use_cache:
        Set False to bypass the stage cache entirely.
    parallel:
        Convenience switch for forcing serial execution.
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError("a batch needs at least one scenario")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError("scenario names within a batch must be unique")

    stage_cache = resolve_cache(cache, enabled=use_cache)
    # Workers reconstruct their cache handle from (dir, flag); the effective
    # flag honours both the handle's own state and the use_cache argument so
    # a disabled handle can never resurrect as an enabled default-dir cache.
    use_cache = stage_cache.enabled
    cache_dir = str(stage_cache.root) if use_cache else None

    if jobs is None:
        jobs = min(len(specs), os.cpu_count() or 1)
    jobs = max(1, int(jobs))
    if not parallel:
        jobs = 1

    start = time.perf_counter()
    if jobs == 1:
        records = [
            run_scenario(spec, cache=stage_cache, use_cache=use_cache).to_dict()
            for spec in specs
        ]
    else:
        work = [(spec.to_dict(), cache_dir, use_cache) for spec in specs]
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            records = list(executor.map(_run_scenario_worker, work))
    runtime = time.perf_counter() - start

    results = [ScenarioResult.from_dict(record) for record in records]

    path: Optional[Path] = None
    if results_path is not None:
        path = Path(results_path)
        write_results_jsonl(results, path)

    return BatchResult(
        results=results,
        runtime_s=runtime,
        jobs=jobs,
        results_path=path,
        cache_dir=stage_cache.root if stage_cache.enabled else None,
    )


def write_results_jsonl(results: Sequence[ScenarioResult], path: PathLike) -> None:
    """Write one JSON record per scenario result (JSONL store)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")


def read_results_jsonl(path: PathLike) -> List[ScenarioResult]:
    """Read a JSONL results store back into :class:`ScenarioResult` objects."""
    results: List[ScenarioResult] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                results.append(ScenarioResult.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed results record at {path}:{line_number}: {exc}"
                ) from exc
    return results
