"""Setuptools entry point.

The pyproject.toml carries all metadata; this shim exists so that editable
installs keep working on minimal offline environments where the ``wheel``
package (required by the PEP 660 editable-install path) is unavailable.
"""

from setuptools import setup

setup()
