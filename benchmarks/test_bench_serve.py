"""Serve front-end latency: the warm-hit path must stay store-read fast.

The planning service's whole value proposition is the memo: a ``POST
/v1/plan`` whose scenario is already ``done`` in the store is one
normalisation + digest + indexed read -- no pipeline, no queue.  These
benches pin that promise with numbers against a live threaded server:

* a single closed-loop client measures the end-to-end warm-hit round trip
  (HTTP parse, normalisation, digest, store lookup, JSON response);
* the synthetic traffic generator hammers a warm catalog with concurrent
  closed-loop clients and asserts the p99 stays under
  :data:`WARM_HIT_P99_BUDGET_S`, publishing p50/p99 into the
  bench-timings artifact (``benchmark.extra_info``) and -- via
  ``compare_baseline.py`` -- the ``BENCH_<run_id>.json`` trajectory point.

The warm catalog is fabricated (rows marked ``done`` with synthetic
payloads), so the benches measure the service, not the solver.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import pytest

from repro.gis import RoofSpec
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec
from repro.serve import ServeApp, ServeClient, create_server, open_serve_store, run_traffic

#: Warm-hit p99 ceiling (seconds) for the closed-loop traffic session.
#: Generous vs. the ~1 ms typical round trip: shared CI runners are noisy,
#: and the gate should catch architectural regressions (a pipeline touch,
#: an unindexed scan), not scheduler jitter.
WARM_HIT_P99_BUDGET_S = 0.25

#: Warm catalog size and traffic shape.
N_CATALOG = 4
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 25


def _bench_spec(index: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"serve-bench-{index}",
        roof=RoofSpec(
            name=f"serve-bench-roof-{index}",
            width_m=6.0 + index,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=2,
        n_series=2,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name="greedy"),
    )


@pytest.fixture()
def warm_service(tmp_path):
    """A live serve stack over a store whose catalog is entirely ``done``."""
    store = open_serve_store(tmp_path / "store.sqlite")
    specs = [_bench_spec(index) for index in range(N_CATALOG)]
    for spec in specs:
        (record,) = store.enroll("warm", [spec])
        store.mark_running("warm", record.digest)
        store.mark_done(
            "warm",
            record.digest,
            {"scenario": spec.name, "synthetic": True},
            wall_time_s=0.01,
        )
    app = ServeApp(store)
    server = create_server(app, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    yield SimpleNamespace(
        base_url=f"http://{host}:{port}",
        documents=[spec.to_dict() for spec in specs],
    )
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()
    store.close()


def test_bench_serve_warm_hit_round_trip(benchmark, warm_service):
    """One client, one warm document: the end-to-end hit latency floor."""
    client = ServeClient(warm_service.base_url, timeout_s=15.0)
    document = warm_service.documents[0]
    first = client.plan(document)
    assert first.status == 200 and first.payload["cached"] is True

    response = benchmark(lambda: client.plan(document))
    assert response.status == 200
    median_s = float(benchmark.stats.stats.median)
    benchmark.extra_info["endpoint"] = "POST /v1/plan (warm hit)"
    print(f"\n[serve] warm-hit round trip median {median_s * 1e3:.2f} ms")
    assert median_s < WARM_HIT_P99_BUDGET_S


def test_bench_serve_traffic_warm_hit_percentiles(benchmark, warm_service):
    """Concurrent closed-loop clients: p99 under budget, p50/p99 published."""
    reports = []

    def session():
        report = run_traffic(
            warm_service.base_url,
            warm_service.documents,
            n_clients=N_CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
        )
        reports.append(report)
        return report

    benchmark.pedantic(session, rounds=1, iterations=1)
    report = reports[-1]
    assert report.n_requests == N_CLIENTS * REQUESTS_PER_CLIENT
    assert report.status_counts == {200: report.n_requests}

    stats = report.latency_stats()
    benchmark.extra_info.update(
        {
            "n_clients": N_CLIENTS,
            "n_requests": report.n_requests,
            "throughput_rps": round(report.throughput_rps, 1),
            "latency_p50_s": stats.p50,
            "latency_p90_s": stats.p90,
            "latency_p99_s": stats.p99,
        }
    )
    print(
        f"\n[serve] {report.n_requests} warm-hit requests over "
        f"{N_CLIENTS} closed-loop clients: p50 {stats.p50 * 1e3:.2f} ms, "
        f"p99 {stats.p99 * 1e3:.2f} ms, {report.throughput_rps:.0f} req/s "
        f"(budget p99 < {WARM_HIT_P99_BUDGET_S * 1e3:.0f} ms)"
    )
    assert stats.p99 < WARM_HIT_P99_BUDGET_S


def test_bench_serve_miss_admission_overhead(benchmark, tmp_path):
    """Cache-miss enqueue (202) stays cheap too: admission + one INSERT.

    Uses a fresh store per measurement round via distinct scenario names so
    every request is a genuine first-time miss, with a queue bound high
    enough never to 429.
    """
    store = open_serve_store(tmp_path / "miss-store.sqlite")
    app = ServeApp(store, max_queue=100_000)
    server = create_server(app, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", timeout_s=15.0)
    counter = {"n": 0}

    def enqueue_miss():
        counter["n"] += 1
        document = _bench_spec(0).to_dict()
        # The name is part of the content digest: each round is a fresh miss.
        document["name"] = f"miss-{counter['n']}"
        response = client.plan(document, priority="batch")
        assert response.status == 202
        return response

    try:
        benchmark.pedantic(enqueue_miss, rounds=30, iterations=1, warmup_rounds=2)
        median_s = float(benchmark.stats.stats.median)
        print(f"\n[serve] cache-miss enqueue median {median_s * 1e3:.2f} ms")
        assert median_s < WARM_HIT_P99_BUDGET_S
    finally:
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()
        store.close()
