"""E8 -- Section V-B runtime claim.

The paper reports that the placement "required less than 120 s under all
configurations" on an 8-core i7, with runtime proportional to the number of
valid grid elements and to the number of modules.  This bench measures the
greedy placer on the full-size Roof 2 instance (the largest Ng) and on a
sweep of smaller synthetic roofs to expose the scaling.
"""

from __future__ import annotations

from repro.core import greedy_floorplan
from repro.experiments import build_problem, runtime_sweep, summarize_runtime


def test_bench_placement_runtime_paper_roof(benchmark, case_studies, table1_config):
    """Greedy placement runtime on the largest paper roof (N = 32)."""
    study = case_studies["roof2"]
    problem = build_problem(study, 32, table1_config.series_length)

    result = benchmark(lambda: greedy_floorplan(problem))
    print(
        f"\n[Sec V-B] roof2 N=32: Ng={study.grid.n_valid}, "
        f"placement runtime {result.runtime_s * 1e3:.1f} ms (paper budget: 120 s)"
    )
    assert result.runtime_s < 120.0


def test_bench_runtime_scaling(benchmark):
    """Runtime sweep across roof sizes and module counts."""
    samples = benchmark.pedantic(
        lambda: runtime_sweep(
            roof_widths_m=(12.0, 20.0, 32.0),
            module_counts=(8, 16),
            grid_pitch=0.2,
            time_step_minutes=240.0,
            day_stride=45,
        ),
        rounds=1,
        iterations=1,
    )
    summary = summarize_runtime(samples)
    print("\n[Sec V-B] runtime sweep (placement only):")
    for sample in samples:
        print(
            f"    width={sample.roof_width_m:5.1f} m  Ng={sample.n_valid_cells:6d}  "
            f"N={sample.n_modules:2d}  placement={sample.placement_runtime_s * 1e3:7.1f} ms"
        )
    assert summary["max_placement_runtime_s"] < summary["paper_budget_s"]
    # Larger instances take longer (proportionality claim, loosely checked).
    small = [s.placement_runtime_s for s in samples if s.roof_width_m == 12.0]
    large = [s.placement_runtime_s for s in samples if s.roof_width_m == 32.0]
    assert max(large) >= min(small)
