"""Fault-injection overhead: disabled chaos hooks must be ~free.

The switchboard's design contract mirrors telemetry's null span: with no
``REPRO_FAULTS`` plan armed, every :func:`repro.faults.fire` call site is
one module-attribute load plus a falsy check.  This bench pins that with
numbers, the same way ``test_bench_telemetry.py`` does for spans: a warm
cached scenario run is benchmarked with faults disabled, the identical
workload is then run under a never-firing counting plan to see how many
fault sites it actually crosses, and the measured per-call disabled cost
times a generous multiple of that count must stay under 5 % of the
fault-free runtime -- the ISSUE's "zero overhead disabled" acceptance bar.
"""

from __future__ import annotations

import time

from repro import faults
from repro.gis import RoofSpec
from repro.runner import run_scenario
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec


def _bench_spec() -> ScenarioSpec:
    """A seconds-scale scenario crossing every in-process fault site."""
    return ScenarioSpec(
        name="faults-bench",
        roof=RoofSpec(
            name="faults-bench-roof",
            width_m=8.0,
            depth_m=5.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=4,
        n_series=2,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name="greedy"),
    )


def test_bench_disabled_fire_overhead(benchmark, tmp_path):
    """Disabled fault injection: < 5 % overhead on a warm cached run."""
    faults.configure(None)
    assert not faults.faults_enabled()

    spec = _bench_spec()
    cache_dir = tmp_path / "cache"
    run_scenario(spec, cache=cache_dir)  # warm every cacheable stage

    result = benchmark(lambda: run_scenario(spec, cache=cache_dir))
    clean_s = float(benchmark.stats.stats.median)
    assert result.annual_energy_mwh > 0

    # Count the fault-site crossings of the identical warm workload with a
    # never-firing plan (``after`` pushed beyond reach): every ``fire``
    # call increments its clause's call counter without ever acting.
    plan = faults.configure(
        ";".join(f"{site}:after=1000000000" for site in sorted(faults.FAULT_SITES))
    )
    run_scenario(spec, cache=cache_dir)
    crossings = sum(clause._calls for clause in plan.specs)
    faults.configure(None)
    assert crossings >= 1  # at least the solver adapter's hook

    # Measure the per-call cost of a disabled fire() directly.
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        faults.fire("solver.error", key="bench")
    per_call_s = (time.perf_counter() - start) / loops

    # Project against 100x the observed crossings: headroom for store-backed
    # campaign runs, whose per-write store.io hooks this workload lacks.
    budget_s = 0.05 * clean_s
    projected_s = max(crossings * 100, 1000) * per_call_s
    print(
        f"\n[faults] warm disabled run {clean_s * 1e3:.2f} ms, "
        f"{crossings} fault-site crossings x {per_call_s * 1e9:.0f} ns "
        f"= {projected_s * 1e6:.1f} us projected overhead at 100x margin "
        f"({100.0 * projected_s / clean_s:.3f} % of the run; budget 5 %)"
    )
    assert projected_s < budget_s
