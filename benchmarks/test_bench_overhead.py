"""E3 -- Figure 4 / Section V-C: wiring-overhead characterisation.

Reproduces the paper's overhead arithmetic: with AWG 10 cable (~7 mOhm/m) at
a conservative 4 A string current, each metre of extra cable dissipates
~0.11 W, i.e. ~0.5 kWh of energy per year at a 50 % duty factor; relative to
the multi-MWh yearly production of Table I the overhead is a fraction of a
percent, and the cost is ~1 $/m.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import PAPER_TABLE1, overhead_characterisation


def test_bench_overhead_characterisation(benchmark):
    """Power/energy/cost overhead vs extra cable length (paper Section V-C)."""
    overhead = benchmark(overhead_characterisation)

    print("\n[Sec V-C] wiring overhead vs extra cable length (4 A string current):")
    for length, power, energy, cost in zip(
        overhead.lengths_m[::5],
        overhead.power_loss_w[::5],
        overhead.annual_loss_wh[::5],
        overhead.cost[::5],
    ):
        print(
            f"    L={length:5.1f} m  loss={power:6.3f} W  "
            f"energy={energy / 1e3:6.2f} kWh/yr  cost=${cost:5.1f}"
        )

    # Paper figures: ~0.11 W per metre, ~0.5 kWh per metre-year.
    assert overhead.loss_per_metre_w == np.float64(0.112) or abs(
        overhead.loss_per_metre_w - 0.112
    ) < 1e-6
    per_metre_energy_kwh = overhead.annual_loss_wh[-1] / overhead.lengths_m[-1] / 1e3
    assert 0.3 < per_metre_energy_kwh < 0.7

    # Relative to the smallest yearly production of Table I (2.957 MWh) the
    # per-metre overhead is well below 0.1 %, matching the paper's claim.
    smallest_production_wh = min(row["traditional_mwh"] for row in PAPER_TABLE1) * 1e6
    per_metre_loss_wh = overhead.annual_loss_wh[-1] / overhead.lengths_m[-1]
    per_metre_fraction = per_metre_loss_wh / smallest_production_wh
    print(f"    per-metre energy overhead = {per_metre_fraction * 100:.4f} % of yearly production")
    assert per_metre_fraction < 0.001
