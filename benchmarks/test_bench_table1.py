"""E7 -- Table I: yearly production of traditional vs proposed placements.

Runs the full reproduction of the paper's headline experiment: for each of
the three roofs and N in {16, 32} modules (strings of 8), the compact
baseline and the greedy floorplan are generated and evaluated over the
simulated year.  Absolute MWh differ from the paper (synthetic DSM/weather);
the asserted properties are the comparison's *shape*: the proposed placement
never loses significantly, the N = 32 improvements fall in the paper's
10-30 % band, and the wiring overhead stays negligible.
"""

from __future__ import annotations

from repro.experiments import PAPER_TABLE1, run_table1


def test_bench_table1_reproduction(benchmark, table1_config, case_studies):
    """Full Table I sweep (3 roofs x N in {16, 32})."""
    results = benchmark.pedantic(
        lambda: run_table1(table1_config, case_studies=case_studies),
        rounds=1,
        iterations=1,
    )

    print("\n[Table I] reproduction (synthetic roofs/weather):")
    print(results.report.render())
    print("\n[Table I] paper reference:")
    for row in PAPER_TABLE1:
        print(
            f"    {row['roof']} N={row['N']:>2}: {row['traditional_mwh']:.3f} -> "
            f"{row['proposed_mwh']:.3f} MWh ({row['improvement_percent']:+.2f} %)"
        )

    by_key = {(entry.roof, entry.n_modules): entry for entry in results.entries}

    # Shape checks -- who wins and by roughly what factor.
    for (roof, n_modules), entry in by_key.items():
        improvement = entry.improvement_percent
        baseline = entry.comparison.baseline
        candidate = entry.comparison.candidate
        assert baseline.annual_energy_mwh > 0.5
        assert candidate.annual_energy_mwh > 0.5
        # The proposed placement never loses more than a few percent.
        assert improvement > -5.0, f"{roof} N={n_modules}: proposed placement lost badly"
        # Wiring overhead stays negligible, as in Section V-C.
        assert candidate.wiring_loss_fraction < 0.02

    # For the dense configurations (N = 32) the gains land in the paper's band.
    n32_improvements = [
        entry.improvement_percent for (roof, n), entry in by_key.items() if n == 32
    ]
    assert max(n32_improvements) > 8.0
    assert all(improvement < 40.0 for improvement in n32_improvements)

    # Per-panel production of the proposed placements is roughly uniform
    # across roofs (they all pick the best cells), as in the paper.
    per_panel = [
        entry.comparison.candidate.annual_energy_mwh / entry.n_modules
        for entry in results.entries
    ]
    assert max(per_panel) / min(per_panel) < 1.6
