"""E6 -- Figure 7: traditional vs proposed placements for N = 32.

Regenerates the placement layouts of the paper's Figure 7 on each roof
(colour-coded by series string in the paper, letter-coded here) and checks
their qualitative properties: the proposed placement is sparser, overlaps the
same general area as the traditional one, and keeps its series strings more
uniformly irradiated (the topology-awareness argument of Section V-B).
"""

from __future__ import annotations

from repro.analysis import overlap_fraction, placement_shape_metrics, string_uniformity
from repro.core import compute_suitability
from repro.experiments import figure7_placements


def test_bench_figure7_placements(benchmark, case_studies):
    """Figure 7 (d-f) vs (a-c): layouts of the two placements on every roof."""

    def build_figures():
        return {
            name: figure7_placements(study, n_modules=32)
            for name, study in case_studies.items()
        }

    figures = benchmark.pedantic(build_figures, rounds=1, iterations=1)

    print("\n[Fig 7] placements for N = 32 (letters = series strings):")
    for name, figure in figures.items():
        print(f"  {name}: improvement {figure.improvement_percent:+.2f} %")
        print("    traditional:")
        print("\n".join("      " + line for line in figure.traditional_ascii.splitlines()[:6]))
        print("    proposed:")
        print("\n".join("      " + line for line in figure.proposed_ascii.splitlines()[:6]))

    for name, study in case_studies.items():
        figure = figures[name]
        # Both placements cover exactly 32 modules.
        assert (figure.traditional_map >= 0).sum() == (figure.proposed_map >= 0).sum()
        assert figure.improvement_percent > -5.0


def test_bench_figure7_structure(case_studies, table1_config):
    """Structural properties behind Figure 7: dispersion and string uniformity."""
    from repro.experiments import build_problem
    from repro.core import greedy_floorplan, traditional_floorplan

    print("\n[Fig 7] structural metrics (N = 32):")
    for name, study in case_studies.items():
        problem = build_problem(study, 32, table1_config.series_length)
        suitability = compute_suitability(problem.solar)
        traditional = traditional_floorplan(problem, suitability=suitability)
        greedy = greedy_floorplan(problem, suitability=suitability)

        shape_traditional = placement_shape_metrics(traditional.placement, suitability)
        shape_greedy = placement_shape_metrics(greedy.placement, suitability)
        uniformity_traditional = string_uniformity(traditional.placement, suitability)
        uniformity_greedy = string_uniformity(greedy.placement, suitability)
        overlap = overlap_fraction(
            traditional.placement, greedy.placement, problem.grid.shape
        )
        print(
            f"    {name}: dispersion {shape_traditional.dispersion_m:5.2f} -> "
            f"{shape_greedy.dispersion_m:5.2f} m, string min/mean "
            f"{uniformity_traditional.mean_ratio:.3f} -> {uniformity_greedy.mean_ratio:.3f}, "
            f"overlap {overlap:.2f}"
        )
        # The proposed placement is sparser...
        assert shape_greedy.dispersion_m >= shape_traditional.dispersion_m - 0.5
        # ...its modules sit on better cells on average...
        assert (
            shape_greedy.mean_footprint_suitability
            >= shape_traditional.mean_footprint_suitability - 1e-6
        )
        # ...and its series strings are at least as uniformly irradiated.
        assert uniformity_greedy.mean_ratio >= uniformity_traditional.mean_ratio - 0.05
