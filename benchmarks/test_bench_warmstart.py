"""Warm-start bench: anytime ladders must actually be faster.

The warm-start PR's headline claim is that solving an ``n_modules``
ladder warm -- each rung resuming from the previous rung's placement --
is materially cheaper than solving every rung cold, while producing
*identical* results.  This bench pins both halves of the claim:

* greedy: median warm-vs-cold speedup of at least 1.5x across the ladder,
  with every warm placement module-for-module equal to its cold twin;
* ILP: a warm incumbent never degrades the objective, and warm and cold
  objectives agree within the reported optimality gap.

The roof is synthetic (no dependency on the paper case studies) so the
bench isolates the placer: the solar field and suitability map are
prepared once and shared by every solve.
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.core import (
    FloorplanProblem,
    ILPConfig,
    compute_suitability,
    default_topology,
    greedy_floorplan,
    ilp_floorplan,
)
from repro.gis import (
    RoofSpec,
    build_roof_scene,
    chimney,
    make_roof_grid,
    suitable_grid_for_scene,
)
from repro.pv.array import SeriesParallelTopology
from repro.pv.datasheet import PV_MF165EB3
from repro.runner import WarmStart
from repro.solar import SolarSimulationConfig, TimeGrid, compute_roof_solar_field
from repro.weather import SyntheticWeatherConfig, generate_weather

LADDER = (8, 16, 24, 32)
REPEATS = 5


@pytest.fixture(scope="module")
def warm_bench_instance():
    """A mid-size synthetic roof with its solar field and suitability."""
    roof = RoofSpec(
        name="warm-bench-roof",
        width_m=24.0,
        depth_m=10.0,
        tilt_deg=28.0,
        azimuth_deg=0.0,
        eave_height_m=5.0,
        edge_setback_m=0.2,
        obstacles=(chimney(6.0, 7.0, side_m=0.9, height_m=1.5),),
    )
    scene = build_roof_scene(roof, dsm_pitch=0.4)
    grid = suitable_grid_for_scene(scene, make_roof_grid(scene, pitch=0.1))
    weather = generate_weather(
        TimeGrid(step_minutes=240.0, day_stride=45), SyntheticWeatherConfig(seed=3)
    )
    solar = compute_roof_solar_field(
        scene,
        grid,
        weather,
        SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=25.0),
    )
    return grid, solar, compute_suitability(solar)


def _problem(grid, solar, n_modules: int) -> FloorplanProblem:
    return FloorplanProblem(
        grid=grid,
        solar=solar,
        n_modules=n_modules,
        topology=default_topology(n_modules, n_series=4),
        datasheet=PV_MF165EB3,
        label=f"warm-bench-n{n_modules}",
    )


def _best_of(fn, repeats: int = REPEATS):
    """(min wall-clock, last result) of ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_greedy_warm_ladder_speedup(warm_bench_instance):
    """Median warm speedup >= 1.5x on the n_modules ladder, results equal."""
    grid, solar, suitability = warm_bench_instance
    cold = {}
    for n in LADDER:
        problem = _problem(grid, solar, n)
        cold[n] = _best_of(lambda p=problem: greedy_floorplan(p, suitability=suitability))
    speedups = []
    print("\n[warm-start] greedy n_modules ladder (best of", REPEATS, "runs):")
    for prev, n in zip(LADDER, LADDER[1:]):
        problem = _problem(grid, solar, n)
        hint = WarmStart(placement=cold[prev][1].placement, exact_prefix=True)
        warm_s, warm = _best_of(
            lambda p=problem, h=hint: greedy_floorplan(
                p, suitability=suitability, warm_start=h
            )
        )
        cold_s, cold_result = cold[n]
        # Identity first: a fast wrong answer is no speedup at all.
        assert warm.warm_modules == prev
        assert warm.placement.modules == cold_result.placement.modules
        assert warm.relaxed_threshold_count == cold_result.relaxed_threshold_count
        speedups.append(cold_s / warm_s)
        print(
            f"    n={prev:2d}->{n:2d}: cold {cold_s * 1e3:7.2f} ms, "
            f"warm {warm_s * 1e3:7.2f} ms, speedup {cold_s / warm_s:5.2f}x"
        )
    median = statistics.median(speedups)
    print(f"    median speedup: {median:.2f}x (floor: 1.50x)")
    assert median >= 1.5


def test_bench_ilp_warm_objective_within_gap(warm_bench_instance):
    """ILP warm vs cold agree within the reported optimality gap."""
    grid, solar, suitability = warm_bench_instance
    # Restrict to a small window so the ILP instance stays bench-friendly.
    mask = np.zeros_like(grid.valid_mask)
    mask[2:22, 2:60] = grid.valid_mask[2:22, 2:60]
    small_grid = grid.with_mask(mask)
    problem = FloorplanProblem(
        grid=small_grid,
        solar=solar.restricted_to(small_grid),
        n_modules=2,
        topology=SeriesParallelTopology(2, 1),
        datasheet=PV_MF165EB3,
        label="warm-bench-ilp",
    )
    small_suitability = compute_suitability(problem.solar)
    config = ILPConfig(time_limit_s=30.0)
    cold_s, cold = _best_of(
        lambda: ilp_floorplan(problem, suitability=small_suitability, config=config),
        repeats=3,
    )
    hint = WarmStart(
        placement=greedy_floorplan(problem, suitability=small_suitability).placement
    )
    warm_s, warm = _best_of(
        lambda: ilp_floorplan(
            problem, suitability=small_suitability, config=config, warm_start=hint
        ),
        repeats=3,
    )
    assert warm.warm_started
    assert warm.gap is not None and cold.gap is not None
    tolerance = max(warm.gap, cold.gap) * max(
        abs(cold.objective_value), 1.0
    ) + 1e-6
    assert warm.objective_value >= cold.objective_value - tolerance
    print(
        f"\n[warm-start] ILP 2-module window: cold {cold_s * 1e3:.1f} ms "
        f"(obj {cold.objective_value:.3f}, gap {cold.gap}), warm "
        f"{warm_s * 1e3:.1f} ms (obj {warm.objective_value:.3f}, gap {warm.gap})"
    )
