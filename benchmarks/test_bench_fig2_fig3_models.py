"""E1 / E2 -- Figures 2(a) and 3: cell I-V curves and module characteristics.

Regenerates the data behind the paper's background figures: the single-diode
cell I-V family (Isc proportional to G, Voc logarithmic, temperature
derating) and the PV-MF165EB3 normalised characteristics the empirical
module model is anchored to.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2_iv_curves, figure3_module_characteristics


def test_bench_figure2_cell_iv_curves(benchmark):
    """Figure 2(a): I-V curves across irradiance and temperature."""
    family = benchmark(figure2_iv_curves)

    isc_by_irradiance = {
        g: family.curve(g, 25.0)[1][0] for g in family.irradiances
    }
    print("\n[Fig 2a] cell Isc vs irradiance (A):")
    for g, isc in isc_by_irradiance.items():
        print(f"    G={g:6.0f} W/m^2 -> Isc={isc:5.2f} A")
    values = list(isc_by_irradiance.values())
    assert all(b > a for a, b in zip(values, values[1:])), "Isc must grow with G"

    voc_by_temperature = {
        t: family.curve(family.irradiances[-1], t)[0][-1] for t in family.temperatures
    }
    print("[Fig 2a] cell Voc vs temperature (V):")
    for t, voc in voc_by_temperature.items():
        print(f"    T={t:5.1f} degC -> Voc={voc:5.3f} V")
    voc_values = list(voc_by_temperature.values())
    assert all(b < a for a, b in zip(voc_values, voc_values[1:])), "Voc must drop with T"


def test_bench_figure3_module_characteristics(benchmark):
    """Figure 3: normalised Pmax/Voc/Isc of the PV-MF165EB3 vs G and T."""
    chars = benchmark(figure3_module_characteristics)

    print("\n[Fig 3] normalised characteristics vs irradiance (T=25 degC):")
    for g, pmax, isc, voc in zip(
        chars.irradiances[::6], chars.pmax_vs_g[::6], chars.isc_vs_g[::6], chars.voc_vs_g[::6]
    ):
        print(f"    G={g:6.0f}  Pmax={pmax:5.3f}  Isc={isc:5.3f}  Voc={voc:5.3f}")
    print("[Fig 3] normalised characteristics vs temperature (G=1000 W/m^2):")
    for t, pmax, voc in zip(chars.temperatures[::5], chars.pmax_vs_t[::5], chars.voc_vs_t[::5]):
        print(f"    T={t:5.1f}  Pmax={pmax:5.3f}  Voc={voc:5.3f}")

    # Paper anchors: everything equals 1 at STC; power scales ~5x from 200 to
    # 1000 W/m^2; temperature affects power by tens of percent at most.
    assert chars.pmax_vs_g[-1] == 1.0
    idx_200 = int(np.argmin(np.abs(chars.irradiances - 200.0)))
    assert 4.5 < chars.pmax_vs_g[-1] / chars.pmax_vs_g[idx_200] < 5.5
    assert 0.6 < chars.pmax_vs_t[-1] / chars.pmax_vs_t[0] < 0.95
