"""Batch-runner throughput: cold vs warm stage cache over the catalog.

The scenario catalog is executed twice through the batch runner against the
same content-hash stage cache.  The cold pass computes every scene / grid /
solar-field / suitability stage and publishes them; the warm pass re-runs
the identical fleet and must be dominated by the (cheap) placement and
evaluation work.  The assertion demonstrates the acceptance criterion of
the scenario/runner subsystem: a warm re-run of the batch is measurably
faster than the cold run.
"""

from __future__ import annotations

import time

from repro.runner import run_batch
from repro.scenario import builtin_scenarios


def test_bench_batch_runner_cold_vs_warm(benchmark, tmp_path):
    """Cold-cache batch vs warm-cache batch over the full built-in catalog."""
    specs = list(builtin_scenarios().values())
    cache_dir = tmp_path / "cache"
    results_path = tmp_path / "results.jsonl"

    start = time.perf_counter()
    cold = run_batch(specs, cache=cache_dir, parallel=False, results_path=results_path)
    cold_s = time.perf_counter() - start

    warm = benchmark(
        lambda: run_batch(specs, cache=cache_dir, parallel=False, results_path=results_path)
    )
    warm_s = float(benchmark.stats.stats.mean)

    hits = warm.cache_hit_counts()
    print(
        f"\n[batch runner] {len(specs)} scenarios: cold {cold_s:.2f}s, "
        f"warm {warm_s:.2f}s ({cold_s / max(warm_s, 1e-9):.1f}x), "
        f"warm cache hits: {hits}"
    )
    # Warm results are bit-identical to cold ones ...
    assert [r.fingerprint() for r in warm.results] == [
        r.fingerprint() for r in cold.results
    ]
    # ... every expensive stage came from the cache ...
    for stage in ("scene", "grid", "solar", "suitability"):
        assert hits[stage] == len(specs)
    # ... and skipping them is what makes the warm run measurably faster.
    assert warm_s < 0.8 * cold_s


def test_bench_batch_runner_parallel_cold(benchmark, tmp_path):
    """Cold-cache parallel batch (2 workers) over the full catalog."""
    specs = list(builtin_scenarios().values())
    counter = iter(range(1_000_000))

    def cold_parallel():
        run_dir = tmp_path / f"run-{next(counter)}"
        return run_batch(specs, cache=run_dir / "cache", jobs=2)

    batch = benchmark.pedantic(cold_parallel, rounds=2, iterations=1)
    print(
        f"\n[batch runner] parallel cold: {len(specs)} scenarios with "
        f"{batch.jobs} workers in {batch.runtime_s:.2f}s"
    )
    assert batch.n_scenarios == len(specs)
