"""E10 -- ablation of the design choices of Section III-C.

The paper motivates three design choices without quantifying them in
isolation: the 75th percentile (instead of the mean) as suitability
signature, the temperature correction factor, and the distance threshold.
This bench re-runs the placement on one paper roof with each choice toggled,
and additionally compares the greedy heuristic against the ILP optimum of the
suitability surrogate on a reduced instance.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_comparison_table
from repro.core import (
    GreedyConfig,
    ILPConfig,
    SuitabilityConfig,
    compute_suitability,
    evaluate_placement,
    greedy_floorplan,
    ilp_floorplan,
    traditional_floorplan,
)
from repro.experiments import build_problem


def test_bench_suitability_ablation(benchmark, case_studies, table1_config):
    """Suitability-metric and distance-threshold ablation on Roof 3, N = 32."""
    study = case_studies["roof3"]
    problem = build_problem(study, 32, table1_config.series_length)

    variants = {
        "p75 + T corr (paper)": (SuitabilityConfig(), GreedyConfig()),
        "p75, no T corr": (SuitabilityConfig(use_temperature_correction=False), GreedyConfig()),
        "mean statistic": (SuitabilityConfig(statistic="mean"), GreedyConfig()),
        "no distance threshold": (
            SuitabilityConfig(),
            GreedyConfig(respect_distance_threshold=False),
        ),
    }

    def run_all():
        baseline = traditional_floorplan(problem)
        baseline_energy = evaluate_placement(problem, baseline.placement).annual_energy_mwh
        rows = {}
        for label, (suit_cfg, greedy_cfg) in variants.items():
            suitability = compute_suitability(problem.solar, suit_cfg, problem.module_model)
            result = greedy_floorplan(problem, suitability=suitability, config=greedy_cfg)
            evaluation = evaluate_placement(problem, result.placement)
            rows[label] = (
                evaluation.annual_energy_mwh,
                100.0 * (evaluation.annual_energy_mwh - baseline_energy) / baseline_energy,
                evaluation.wiring_extra_length_m,
            )
        return baseline_energy, rows

    baseline_energy, rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\n[Ablation] roof3, N=32; traditional baseline = {baseline_energy:.3f} MWh")
    print(
        format_comparison_table(
            list(rows.keys()),
            [list(values) for values in rows.values()],
            ["MWh/yr", "vs trad %", "extra cable m"],
        )
    )

    paper_energy = rows["p75 + T corr (paper)"][0]
    # Every variant still produces a sane placement...
    for label, (energy, _, _) in rows.items():
        assert energy > 0.5 * paper_energy
    # ...and the paper's configuration is not significantly beaten by the
    # mean-statistic variant it argues against.
    assert rows["mean statistic"][0] <= paper_energy * 1.05
    # Removing the distance threshold spreads the modules further.
    assert rows["no distance threshold"][2] >= rows["p75 + T corr (paper)"][2] - 1.0


def test_bench_greedy_vs_ilp_surrogate(benchmark, case_studies, table1_config):
    """Greedy vs ILP optimum of the suitability surrogate (reduced instance)."""
    study = case_studies["roof1"]
    problem = build_problem(study, 8, table1_config.series_length)
    suitability = compute_suitability(problem.solar)

    # Restrict the ILP to a coarser anchor lattice by masking to a sub-window
    # of the roof, keeping the anchor count tractable.
    mask = np.zeros_like(problem.grid.valid_mask)
    mask[:, : problem.grid.n_cols // 3] = problem.grid.valid_mask[:, : problem.grid.n_cols // 3]
    from repro.core import FloorplanProblem

    grid = problem.grid.with_mask(mask)
    solar = problem.solar.restricted_to(grid)
    reduced = FloorplanProblem(
        grid=grid,
        solar=solar,
        n_modules=8,
        topology=problem.topology,
        datasheet=problem.datasheet,
        label="roof1-reduced",
    )
    reduced_suitability = compute_suitability(reduced.solar)

    def run_both():
        greedy = greedy_floorplan(reduced, suitability=reduced_suitability)
        ilp = ilp_floorplan(
            reduced, suitability=reduced_suitability, config=ILPConfig(time_limit_s=30.0)
        )
        return greedy, ilp

    greedy, ilp = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def surrogate(placement):
        total = 0.0
        for module_cells in placement.covered_cells_by_module():
            total += float(
                np.nanmean(reduced_suitability.values[module_cells[:, 0], module_cells[:, 1]])
            )
        return total

    greedy_score = surrogate(greedy.placement)
    ilp_score = surrogate(ilp.placement)
    greedy_energy = evaluate_placement(reduced, greedy.placement).annual_energy_mwh
    ilp_energy = evaluate_placement(reduced, ilp.placement).annual_energy_mwh
    print(
        f"\n[Ablation] greedy vs ILP on roof1 window (N=8): "
        f"surrogate {greedy_score:.1f} vs {ilp_score:.1f}, "
        f"energy {greedy_energy:.3f} vs {ilp_energy:.3f} MWh"
    )
    # The ILP is optimal for the surrogate; the greedy must stay close.
    assert ilp_score >= greedy_score - 1e-6
    assert greedy_score >= 0.97 * ilp_score
