"""Speedup / size benchmarks of the daylight-compressed solar field (PR 3).

Measured against the kept dense reference
(:func:`repro.solar.compute_roof_solar_field_dense_reference`) on the
paper's 15-minute annual time base (~35k steps):

* **assembly wall-clock** -- the chunked, per-sector-grouped compressed
  assembly must be at least 2x faster than the dense flow, which
  materialises the full float64 ``(n_time, Ng)`` shadow matrix and the
  dense broadcast products;
* **cache entry size** -- the solar stage entry (pickle + ``.npy``
  irradiance sidecar) must be at least 1.8x smaller than a pickle of the
  dense field;
* **exactness** -- the compressed field expands to the dense irradiance
  bit for bit, so the speed is not bought with accuracy.

The test prints the measured figures so the scheduled CI bench job archives
them in the uploaded timings artifact alongside the other benches.
"""

from __future__ import annotations

import pickle
import time

import numpy as np

from repro.gis import (
    RoofSpec,
    build_roof_scene,
    chimney,
    make_roof_grid,
    suitable_grid_for_scene,
    vent,
)
from repro.runner.cache import StageCache
from repro.runner.stages import STAGE_SOLAR
from repro.solar import (
    SolarSimulationConfig,
    compute_horizon_map,
    compute_roof_solar_field,
    compute_roof_solar_field_dense_reference,
    paper_time_grid,
)
from repro.weather import SyntheticWeatherConfig, generate_weather


def _bench_roof_spec() -> RoofSpec:
    """A 12 m x 6 m roof: Ng ~ 1.5k at the paper's 20 cm pitch, so the
    dense reference's full-matrix transients stay well under a gigabyte
    while the 35k-step time axis matches the paper exactly."""
    return RoofSpec(
        name="bench-roof",
        width_m=12.0,
        depth_m=6.0,
        tilt_deg=26.0,
        azimuth_deg=10.0,
        eave_height_m=5.0,
        edge_setback_m=0.2,
        obstacles=(
            chimney(3.0, 4.5, side_m=0.8, height_m=1.6),
            vent(7.0, 2.0, side_m=0.4, height_m=0.8),
            vent(9.5, 4.0, side_m=0.4, height_m=0.9),
        ),
        surface_roughness_m=0.08,
        roughness_correlation_m=1.0,
        roughness_seed=5,
    )


def _best_of(fn, repeats: int):
    """Smallest wall time of ``repeats`` runs and the last result."""
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_solar_field_compression(tmp_path):
    """Compressed assembly >= 2x, cache entry >= 1.8x smaller, bit-exact."""
    scene = build_roof_scene(_bench_roof_spec(), dsm_pitch=0.4)
    grid = suitable_grid_for_scene(scene, make_roof_grid(scene, pitch=0.2))
    time_grid = paper_time_grid()  # the paper's 15-minute annual resolution
    weather = generate_weather(time_grid, SyntheticWeatherConfig(seed=7))
    config = SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=25.0)
    # The horizon map dominates a cold solar stage and is cached/shared in
    # every real flow; precompute it so the benchmark isolates the assembly.
    horizon = compute_horizon_map(
        scene.dsm.raster,
        n_sectors=config.n_horizon_sectors,
        max_distance=config.horizon_max_distance_m,
    )

    compressed_s, compressed = _best_of(
        lambda: compute_roof_solar_field(scene, grid, weather, config, horizon_map=horizon),
        3,
    )
    dense_s, dense = _best_of(
        lambda: compute_roof_solar_field_dense_reference(
            scene, grid, weather, config, horizon_map=horizon
        ),
        2,
    )

    assert np.array_equal(compressed.to_dense(), dense.irradiance)
    assert compressed.n_daylight < 0.62 * compressed.n_time

    cache = StageCache(root=tmp_path / "cache")
    cache.put(STAGE_SOLAR, {"bench": "compressed"}, compressed)
    entry_bytes = sum(
        path.stat().st_size
        for path in (tmp_path / "cache" / STAGE_SOLAR).glob("*")
    )
    dense_bytes = len(pickle.dumps(dense, protocol=pickle.HIGHEST_PROTOCOL))

    speedup = dense_s / compressed_s
    shrink = dense_bytes / entry_bytes
    print(
        f"\n[solar field] Ng={compressed.n_cells}, n_time={compressed.n_time}, "
        f"n_daylight={compressed.n_daylight} "
        f"({compressed.n_time / compressed.n_daylight:.2f}x row compression): "
        f"dense {dense_s * 1e3:.0f} ms, compressed {compressed_s * 1e3:.0f} ms "
        f"-> {speedup:.1f}x; cache entry {entry_bytes / 1e6:.1f} MB vs dense "
        f"pickle {dense_bytes / 1e6:.1f} MB -> {shrink:.2f}x smaller"
    )
    assert speedup >= 2.0
    assert shrink >= 1.8
