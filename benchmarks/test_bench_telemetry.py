"""Telemetry overhead: instrumentation left in hot paths must be ~free.

The tracer's design contract is that *disabled* tracing costs nothing
measurable: ``span()`` returns a shared null singleton and the call sites
gate their expensive attribute collection on ``span.active``.  This bench
pins that contract with numbers: a warm-cache scenario run with tracing
off is benchmarked, the same workload is traced once to count how many
span/event call sites it actually crosses, and the measured per-call null
cost times that count must stay under 5 % of the untraced runtime.
"""

from __future__ import annotations

import os
import time

from repro import telemetry
from repro.gis import RoofSpec
from repro.runner import run_scenario
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec
from repro.telemetry import NULL_SPAN, read_trace, span


def _bench_spec() -> ScenarioSpec:
    """A seconds-scale scenario: big enough to cross every instrumented path."""
    return ScenarioSpec(
        name="telemetry-bench",
        roof=RoofSpec(
            name="telemetry-bench-roof",
            width_m=8.0,
            depth_m=5.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=4,
        n_series=2,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name="greedy"),
    )


def test_bench_null_span_overhead(benchmark, tmp_path):
    """Disabled tracing: no files, and < 5 % overhead on a warm cached run."""
    telemetry.configure(None)
    assert not telemetry.tracing_enabled()

    spec = _bench_spec()
    cache_dir = tmp_path / "cache"
    run_scenario(spec, cache=cache_dir)  # warm every cacheable stage

    result = benchmark(lambda: run_scenario(spec, cache=cache_dir))
    untraced_s = float(benchmark.stats.stats.median)
    assert result.annual_energy_mwh > 0

    # The whole untraced run must not have touched any trace artifact.
    assert os.environ.get(telemetry.TRACE_ENV) is None
    assert not list(tmp_path.glob("*.jsonl*"))

    # Trace the identical warm workload once to count instrumentation sites.
    trace_path = tmp_path / "count-trace.jsonl"
    telemetry.configure(trace_path)
    run_scenario(spec, cache=cache_dir)
    telemetry.merge_active_trace()
    telemetry.configure(None)
    crossings = len(read_trace(trace_path))
    assert crossings >= 10  # scenario + 6 stages + cache get/put at least

    # Measure the per-call cost of a disabled span directly.
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        with span("bench", key=1) as sp:
            sp.set(value=2)
    per_call_s = (time.perf_counter() - start) / loops
    assert span("bench") is NULL_SPAN

    budget_s = 0.05 * untraced_s
    projected_s = crossings * per_call_s
    print(
        f"\n[telemetry] warm untraced run {untraced_s * 1e3:.2f} ms, "
        f"{crossings} instrumentation crossings x {per_call_s * 1e9:.0f} ns "
        f"= {projected_s * 1e6:.1f} us projected overhead "
        f"({100.0 * projected_s / untraced_s:.3f} % of the run; budget 5 %)"
    )
    assert projected_s < budget_s
