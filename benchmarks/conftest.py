"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has a bench module here.  The case-study
roofs are prepared once per session at a reduced resolution (hourly samples
of every 14th day, DSM at 0.5 m) so the full harness runs in a couple of
minutes; the placement grids keep the paper's 20 cm pitch and full roof
size, so Ng and the placement behaviour match the full-scale experiment.
Passing ``--paper-scale`` through the environment variable
``REPRO_PAPER_SCALE=1`` switches to the paper's 15-minute/every-day time
base (slow; needs a few GB of RAM).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import CaseStudyConfig, Table1Config, prepare_all_case_studies
from repro.solar import SolarSimulationConfig


def _benchmark_case_config() -> CaseStudyConfig:
    if os.environ.get("REPRO_PAPER_SCALE") == "1":
        return CaseStudyConfig(scale=1.0, time_step_minutes=15.0, day_stride=1)
    return CaseStudyConfig(
        scale=1.0,
        grid_pitch=0.2,
        dsm_pitch=0.4,
        time_step_minutes=60.0,
        day_stride=7,
        solar=SolarSimulationConfig(),
    )


@pytest.fixture(scope="session")
def case_config() -> CaseStudyConfig:
    """Resolution configuration used by every case-study bench."""
    return _benchmark_case_config()


@pytest.fixture(scope="session")
def table1_config(case_config) -> Table1Config:
    """The Table I experiment configuration."""
    return Table1Config(module_counts=(16, 32), series_length=8, case_study=case_config)


@pytest.fixture(scope="session")
def case_studies(case_config):
    """The three paper roofs, prepared once and shared by all benches."""
    return prepare_all_case_studies(case_config)
