"""E4 / E5 -- Figure 6: suitable areas and 75th-percentile irradiance maps.

Checks the roof characteristics columns of Table I (grid dimensions W x L
and the number of valid elements Ng) and regenerates the per-roof
75th-percentile irradiance distribution the floorplanner ranks cells by.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import PAPER_TABLE1, figure6_irradiance_map


def test_bench_roof_characteristics(case_studies):
    """Figure 6(a) / Table I columns: grid size and valid elements per roof."""
    paper_ng = {row["roof"]: row["Ng"] for row in PAPER_TABLE1}
    paper_wxl = {row["roof"]: row["WxL"] for row in PAPER_TABLE1}
    print("\n[Fig 6a] roof characteristics (paper vs reproduction):")
    for name, study in case_studies.items():
        measured_wxl = f"{study.grid.n_cols}x{study.grid.n_rows}"
        print(
            f"    {name}: WxL {measured_wxl} (paper {paper_wxl[name]}), "
            f"Ng {study.grid.n_valid} (paper {paper_ng[name]})"
        )
        assert measured_wxl == paper_wxl[name]
        # The synthetic encumbrances remove a comparable share of the roof.
        assert 0.6 * paper_ng[name] < study.grid.n_valid < 1.25 * paper_ng[name]
    # Roof 1 (pipe racks) keeps the smallest usable fraction, as in the paper.
    fractions = {
        name: study.grid.n_valid / study.grid.n_cells for name, study in case_studies.items()
    }
    assert fractions["roof1"] == min(fractions.values())


def test_bench_figure6_percentile_maps(benchmark, case_studies):
    """Figure 6(b): 75th-percentile irradiance distribution of each roof."""

    def build_maps():
        return {name: figure6_irradiance_map(study) for name, study in case_studies.items()}

    maps = benchmark.pedantic(build_maps, rounds=1, iterations=1)

    print("\n[Fig 6b] 75th-percentile irradiance maps:")
    for name, figure in maps.items():
        finite = figure.percentile_map[np.isfinite(figure.percentile_map)]
        print(
            f"    {name}: p75 range {finite.min():6.1f}..{finite.max():6.1f} W/m^2, "
            f"spatial CV {figure.variation_coefficient:.3f}"
        )
        print("\n".join("      " + line for line in figure.ascii_rendering.splitlines()[:8]))
        # The distribution must be spatially non-uniform (the paper's premise).
        assert figure.variation_coefficient > 0.03
        assert finite.max() > finite.min()
    # Roof 1 is the least irradiated on average (visible in the paper's maps).
    means = {
        name: float(np.nanmean(figure.percentile_map)) for name, figure in maps.items()
    }
    assert means["roof1"] <= max(means.values())
