"""Gate benchmark timings against the tracked baseline.

CI's scheduled/dispatched bench job runs the suite with
``--benchmark-json bench-timings.json`` and then calls this script, which

1. compares each benchmark's median against
   ``benchmarks/baselines/bench-baseline.json`` and **fails** (exit 1) when
   any benchmark regressed by more than ``--tolerance`` (default 25 %),
2. prints a Markdown delta table (and appends it to ``--summary``, which CI
   points at ``$GITHUB_STEP_SUMMARY`` so the table lands in the job page),
3. writes a trajectory point (``BENCH_<run>.json``) holding the run's
   medians plus commit metadata, archived as an artifact so the benchmark
   history accumulates run over run.  When ``--trajectory`` is omitted the
   point is written next to the timings file as ``BENCH_<run_id>.json``
   (``$GITHUB_RUN_ID``, or a local timestamp outside CI) -- local runs
   accumulate history too instead of silently writing nothing.  Pass
   ``--no-trajectory`` to opt out.

Benchmarks absent from the baseline are reported as *new* (never failing);
baseline entries missing from the run are reported as *removed*.  Medians
below ``--min-seconds`` are exempt from the gate -- sub-millisecond timings
on shared CI runners are dominated by noise, not by code.

Refresh the committed baseline after an intentional performance change::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json bench-timings.json
    python benchmarks/compare_baseline.py bench-timings.json --update

Only the Python standard library is used, so the gate runs before the
project's own dependencies are even imported.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" / "bench-baseline.json"

#: Baseline file format marker.
BASELINE_FORMAT_VERSION = 1


def load_run_medians(timings_path: Path) -> Dict[str, float]:
    """Extract ``{fullname: median_seconds}`` from a pytest-benchmark JSON.

    Tolerant of a missing, unparsable, or empty timings file (a crashed
    bench session): returns ``{}`` so the caller can still write a
    trajectory point recording that the run produced no medians, and gate
    afterwards.
    """
    if not timings_path.exists():
        return {}
    try:
        data = json.loads(timings_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return {}
    medians: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        medians[bench["fullname"]] = float(bench["stats"]["median"])
    return medians


def load_run_extra_info(timings_path: Path) -> Dict[str, dict]:
    """Extract ``{fullname: extra_info}`` for benchmarks that published any.

    Benchmarks attach derived figures -- the serve bench's warm-hit
    p50/p99, throughput -- via ``benchmark.extra_info``; carrying them into
    the trajectory point keeps percentile history alongside the medians.
    Tolerant of missing/unparsable timings, like :func:`load_run_medians`.
    """
    if not timings_path.exists():
        return {}
    try:
        data = json.loads(timings_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return {}
    extra: Dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        info = bench.get("extra_info") or {}
        if info:
            extra[bench["fullname"]] = info
    return extra


def load_baseline(baseline_path: Path) -> Dict[str, float]:
    """Read the committed baseline medians."""
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    return {name: float(median) for name, median in data["medians"].items()}


def write_baseline(baseline_path: Path, medians: Dict[str, float]) -> None:
    """(Re)write the committed baseline file deterministically."""
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": BASELINE_FORMAT_VERSION,
        "note": (
            "Median benchmark timings in seconds; refresh with "
            "`python benchmarks/compare_baseline.py <timings.json> --update` "
            "after intentional performance changes."
        ),
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    baseline_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_table(rows: List[dict]) -> str:
    """Markdown delta table, worst regressions first."""
    lines = [
        "| benchmark | baseline (s) | current (s) | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        baseline = "-" if row["baseline"] is None else f"{row['baseline']:.6f}"
        current = "-" if row["current"] is None else f"{row['current']:.6f}"
        delta = "-" if row["delta"] is None else f"{row['delta']:+.1%}"
        lines.append(
            f"| {row['name']} | {baseline} | {current} | {delta} | {row['status']} |"
        )
    return "\n".join(lines) + "\n"


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float,
    min_seconds: float,
) -> List[dict]:
    """Join current and baseline medians into annotated comparison rows."""
    rows: List[dict] = []
    for name in sorted(set(current) | set(baseline)):
        cur = current.get(name)
        base = baseline.get(name)
        if base is None:
            rows.append(
                {"name": name, "baseline": None, "current": cur, "delta": None,
                 "status": "new"}
            )
            continue
        if cur is None:
            rows.append(
                {"name": name, "baseline": base, "current": None, "delta": None,
                 "status": "removed"}
            )
            continue
        delta = (cur - base) / base if base > 0 else 0.0
        if delta > tolerance and cur >= min_seconds:
            status = "REGRESSION"
        elif delta > tolerance:
            status = "noisy (below min-seconds floor)"
        elif delta < -tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            {"name": name, "baseline": base, "current": cur, "delta": delta,
             "status": status}
        )
    rows.sort(key=lambda row: -(row["delta"] or 0.0))
    return rows


def default_trajectory_path(timings_path: Path) -> Path:
    """``BENCH_<run_id>.json`` next to the timings file.

    ``run_id`` is ``$GITHUB_RUN_ID`` on CI; locally it falls back to a
    UTC timestamp so repeated local runs do not overwrite each other.
    """
    run_id = os.environ.get("GITHUB_RUN_ID") or time.strftime(
        "local-%Y%m%dT%H%M%SZ", time.gmtime()
    )
    return timings_path.resolve().parent / f"BENCH_{run_id}.json"


def write_trajectory(
    path: Path, medians: Dict[str, float], extra_info: Optional[Dict[str, dict]] = None
) -> None:
    """Write one benchmark-history point (commit metadata from CI env vars).

    ``complete`` is False when the bench session produced no medians (it
    crashed or was interrupted), so the archived history shows the gap
    instead of silently skipping the run.  ``extra_info`` carries published
    per-benchmark figures (e.g. serve warm-hit p50/p99) verbatim.
    """
    extra_info = extra_info or {}
    payload = {
        "format_version": BASELINE_FORMAT_VERSION,
        "commit": os.environ.get("GITHUB_SHA"),
        "run_id": os.environ.get("GITHUB_RUN_ID"),
        "ref": os.environ.get("GITHUB_REF"),
        "complete": bool(medians),
        "medians": {name: medians[name] for name in sorted(medians)},
        "extra_info": {name: extra_info[name] for name in sorted(extra_info)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("timings", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="tracked baseline file"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="fractional regression threshold (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="medians below this are exempt from the gate (CI noise floor)",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="append the delta table to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=None,
        help=(
            "write this run's BENCH_*.json history point here "
            "(default: BENCH_<run_id>.json next to the timings file)"
        ),
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="skip writing the trajectory point entirely",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the run instead of gating against it",
    )
    args = parser.parse_args(argv)

    current = load_run_medians(args.timings)

    # The trajectory point is written before any gating, so every run --
    # CI or local -- leaves its BENCH_<run_id>.json behind, including runs
    # whose bench session failed and produced no (or partial) medians.
    if not args.no_trajectory:
        trajectory = (
            args.trajectory
            if args.trajectory is not None
            else default_trajectory_path(args.timings)
        )
        write_trajectory(trajectory, current, load_run_extra_info(args.timings))
        print(f"trajectory point written to {trajectory}")

    if not current:
        raise SystemExit(f"error: {args.timings} contains no benchmark records")

    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated with {len(current)} medians at {args.baseline}")
        return 0

    if not args.baseline.exists():
        raise SystemExit(
            f"error: baseline {args.baseline} does not exist; create it with --update"
        )
    baseline = load_baseline(args.baseline)
    rows = compare(current, baseline, args.tolerance, args.min_seconds)
    table = render_table(rows)
    regressions = [row for row in rows if row["status"] == "REGRESSION"]

    heading = (
        f"## Benchmark comparison ({len(current)} benchmarks, "
        f"tolerance {args.tolerance:.0%})\n\n"
    )
    verdict = (
        f"**{len(regressions)} regression(s) beyond tolerance.**\n"
        if regressions
        else "No regressions beyond tolerance.\n"
    )
    report = heading + table + "\n" + verdict
    print(report)
    if args.summary is not None:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(report)

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
