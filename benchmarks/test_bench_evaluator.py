"""Speedup benchmarks of the vectorised evaluation engine (PR 2).

Three fast paths are measured against their kept-for-test reference
implementations, on the same paper-roof data the other benches use:

* ``compute_horizon_map`` -- preallocated scratch buffers, deduplicated
  radial steps, the tangent-space ``arctan2`` deferral and the sector
  thread pool must deliver at least 3x over the per-(sector, distance)
  shifted-copy reference (2x on single-core boxes, where the thread-pool
  share of the budget cannot materialise), with bit-identical output;
* ``PlacementEvaluator`` -- scoring a stream of overlapping placements
  (the exhaustive/ablation workload) through one shared context must be at
  least 3x faster than the per-module-loop reference evaluation;
* ``exhaustive_floorplan`` -- the search routed through the shared
  evaluator must halve the wall time of the pre-evaluator flow.

Each test prints the measured timings so the scheduled CI bench job archives
them as an artifact.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import (
    ExhaustiveConfig,
    FloorplanProblem,
    PlacementEvaluator,
    default_topology,
    evaluate_placement_reference,
    exhaustive_floorplan,
)
from repro.core.exhaustive import _any_overlap
from repro.core.constraints import feasible_anchor_mask
from repro.core.placement import ModulePlacement, Placement
from repro.experiments import build_problem
from repro.pv.datasheet import PV_MF165EB3
from repro.solar.shading import compute_horizon_map, compute_horizon_map_reference


def _best_of(fn, repeats: int) -> float:
    """Smallest wall time of ``repeats`` runs (robust on noisy CI boxes)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_horizon_kernel_speedup(case_studies):
    """Fast horizon kernel: >= 3x over the reference, bit-identical output.

    The single-threaded kernel alone is ~2.4x (the bit-exactness insurance
    for tied obstruction ratios costs the rest); the sector thread pool
    supplies the remaining budget, so the 3x floor applies where at least
    four cores are available and a 2x floor is asserted on smaller boxes.
    """
    dsm = case_studies["roof2"].scene.dsm.raster

    reference = compute_horizon_map_reference(dsm)
    fast = compute_horizon_map(dsm)
    assert np.array_equal(reference.horizon_deg, fast.horizon_deg)

    reference_s = _best_of(lambda: compute_horizon_map_reference(dsm), 2)
    fast_s = _best_of(lambda: compute_horizon_map(dsm), 3)
    speedup = reference_s / fast_s
    cores = os.cpu_count() or 1
    floor = 3.0 if cores >= 4 else 2.0
    print(
        f"\n[horizon kernel] DSM {dsm.shape}, {cores} cores: "
        f"reference {reference_s * 1e3:.1f} ms, fast {fast_s * 1e3:.1f} ms "
        f"-> {speedup:.1f}x (floor {floor:.0f}x)"
    )
    assert speedup >= floor


def _placement_stream(problem, count: int, pool_size: int = 48):
    """Distinct placements drawn from a shared anchor pool.

    This is the shape of the exhaustive/ablation workloads the evaluator
    context targets: hundreds of candidate floorplans recombining the same
    feasible anchors, so the per-anchor precomputation amortises.
    """
    footprint = problem.footprint
    feasible = feasible_anchor_mask(
        problem.grid.valid_mask, np.zeros(problem.grid.shape, dtype=bool), footprint
    )
    rows, cols = np.nonzero(feasible)
    anchors = list(zip(rows.tolist(), cols.tolist()))
    stride = max(1, len(anchors) // pool_size)
    pool = anchors[::stride][:pool_size]
    placements = []
    for shift in range(count):
        chosen: list = []
        for offset in range(len(pool)):
            candidate = pool[(shift + offset * max(1, shift % 5)) % len(pool)]
            if len(chosen) == problem.n_modules:
                break
            if candidate not in chosen and not _any_overlap(
                chosen + [candidate], footprint.cells_h, footprint.cells_w
            ):
                chosen.append(candidate)
        if len(chosen) < problem.n_modules:
            continue
        placements.append(
            Placement(
                modules=tuple(
                    ModulePlacement(module_index=i, row=r, col=c)
                    for i, (r, c) in enumerate(chosen)
                ),
                footprint=footprint,
                topology=problem.topology,
                grid_pitch=problem.grid.pitch,
                label=f"stream-{shift}",
            )
        )
    return placements


def test_bench_evaluator_speedup(case_studies, table1_config):
    """Shared-context placement evaluation: >= 3x over the per-module loop."""
    problem = build_problem(
        case_studies["roof2"], 16, table1_config.series_length
    )
    placements = _placement_stream(problem, 100)
    assert len(placements) >= 40

    evaluator = PlacementEvaluator(problem)
    for placement in placements[:2]:
        reference_value = evaluate_placement_reference(problem, placement).annual_energy_wh
        fast_value = evaluator.evaluate(placement).annual_energy_wh
        assert abs(fast_value - reference_value) <= 1e-9 * abs(reference_value)

    def run_reference():
        for placement in placements:
            evaluate_placement_reference(problem, placement)

    def run_fast():
        shared = PlacementEvaluator(problem)
        for placement in placements:
            shared.evaluate(placement)

    reference_s = _best_of(run_reference, 2)
    fast_s = _best_of(run_fast, 3)
    speedup = reference_s / fast_s
    print(
        f"\n[evaluator] roof2 N=16, n_time={problem.solar.n_time}, "
        f"{len(placements)} placements: reference {reference_s * 1e3:.1f} ms, "
        f"fast {fast_s * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 3.0


def _mini_exhaustive_problem(case_studies) -> FloorplanProblem:
    """A 2-module instance small enough for the brute-force search."""
    study = case_studies["roof1"]
    grid = study.grid
    mask = np.zeros_like(grid.valid_mask)
    mask[4:12, 4:28] = grid.valid_mask[4:12, 4:28]
    restricted = grid.with_mask(mask)
    solar = study.solar.restricted_to(restricted)
    return FloorplanProblem(
        grid=restricted,
        solar=solar,
        n_modules=2,
        topology=default_topology(2, n_series=2),
        datasheet=PV_MF165EB3,
        label="exhaustive-bench",
    )


def _reference_exhaustive(problem: FloorplanProblem) -> float:
    """The pre-evaluator search: one full evaluation context per candidate."""
    import itertools

    footprint = problem.footprint
    feasible = feasible_anchor_mask(
        problem.grid.valid_mask, np.zeros(problem.grid.shape, dtype=bool), footprint
    )
    rows, cols = np.nonzero(feasible)
    anchors = list(zip(rows.tolist(), cols.tolist()))
    best_energy = -np.inf
    for combination in itertools.combinations(range(len(anchors)), problem.n_modules):
        selected = [anchors[i] for i in combination]
        if _any_overlap(selected, footprint.cells_h, footprint.cells_w):
            continue
        placement = Placement(
            modules=tuple(
                ModulePlacement(module_index=i, row=r, col=c)
                for i, (r, c) in enumerate(selected)
            ),
            footprint=footprint,
            topology=problem.topology,
            grid_pitch=problem.grid.pitch,
            label="exhaustive-candidate",
        )
        energy = evaluate_placement_reference(problem, placement).annual_energy_wh
        best_energy = max(best_energy, energy)
    return best_energy


def test_bench_exhaustive_speedup(case_studies):
    """Exhaustive search through the shared evaluator: >= 2x wall time."""
    problem = _mini_exhaustive_problem(case_studies)
    config = ExhaustiveConfig(max_combinations=500_000)

    result = exhaustive_floorplan(problem, config)
    reference_best = _reference_exhaustive(problem)
    assert abs(result.best_energy_wh - reference_best) <= 1e-9 * abs(reference_best)

    reference_s = _best_of(lambda: _reference_exhaustive(problem), 1)
    fast_s = _best_of(lambda: exhaustive_floorplan(problem, config), 2)
    speedup = reference_s / fast_s
    print(
        f"\n[exhaustive] {result.n_combinations_evaluated} candidates: "
        f"reference {reference_s:.2f} s, fast {fast_s:.2f} s -> {speedup:.1f}x"
    )
    assert speedup >= 2.0
