"""Chaos tests: injected faults must be absorbed, never fatal.

Each test arms :mod:`repro.faults` (via ``REPRO_FAULTS`` or in-process
``configure``) and drives the production machinery -- the batch driver's
watchdog and retry loop, the stage cache's integrity layer, the result
store's lease reclamation and doctor -- to a converged, fully-accounted
end state.  The point is never the fault itself but the recovery: a
campaign hit by crashes, hangs, corruption or signals must end with every
point ``done`` (possibly after a resume) and zero orphaned state.
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.errors import ConfigurationError, ScenarioExecutionError
from repro.gis import RoofSpec
from repro.runner import (
    ResultStore,
    StageCache,
    get_solver,
    register_solver,
    run_batch,
    scenario_content_digest,
    solve_with_fallback,
)
from repro.runner.store import STATUS_DONE, STATUS_FAILED, STATUS_TIMED_OUT
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec
from repro.sweep import SweepAxis, SweepPlan


def tiny_spec(name: str, solver: str = "greedy", n_modules: int = 2) -> ScenarioSpec:
    """A seconds-scale scenario with a roof unique to ``name``."""
    return ScenarioSpec(
        name=name,
        roof=RoofSpec(
            name=f"{name}-roof",
            width_m=6.0,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=n_modules,
        n_series=n_modules,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name=solver),
    )


def statuses(store_path: Path, campaign: str) -> dict:
    with ResultStore(store_path) as store:
        return store.status_counts(campaign)


# ---------------------------------------------------------------------------
# Injected worker faults: the campaign must converge
# ---------------------------------------------------------------------------


class TestChaosCampaigns:
    def test_worker_crash_is_absorbed_by_retries(self, tmp_path, monkeypatch):
        """An OOM-style worker kill fails only its point; retries finish it.

        The state directory makes ``times=1`` fleet-wide: the replacement
        worker spawned after the crash must not crash again.
        """
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.crash:match=victim,times=1")
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "faults-state"))
        store_path = tmp_path / "store.sqlite"

        batch = run_batch(
            [tiny_spec("victim"), tiny_spec("bystander")],
            cache=tmp_path / "cache",
            jobs=2,
            store=store_path,
            campaign="chaos-crash",
            retries=2,
        )
        summary = batch.campaign
        assert (summary.done, summary.failed, summary.timed_out) == (2, 0, 0)
        assert summary.retried >= 1  # the crash cost at least one re-enqueue
        counts = statuses(store_path, "chaos-crash")
        assert counts["done"] == 2
        assert counts["running"] == counts["failed"] == 0

    def test_worker_hang_trips_watchdog_then_resume_completes(
        self, tmp_path, monkeypatch
    ):
        """A hung worker is evicted by the deadline watchdog (``timed_out``),
        and a resume with faults cleared finishes the campaign."""
        cache_dir = tmp_path / "cache"
        specs = [tiny_spec("hung"), tiny_spec("steady")]
        # Warm the innocent point so it cannot trip the 2 s budget itself.
        run_batch([specs[1]], cache=cache_dir, parallel=False)

        monkeypatch.setenv(
            faults.FAULTS_ENV, "worker.hang:match=hung,times=5,sleep=30"
        )
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "faults-state"))
        store_path = tmp_path / "store.sqlite"

        batch = run_batch(
            specs,
            cache=cache_dir,
            jobs=2,
            store=store_path,
            campaign="chaos-hang",
            timeout_s=2.0,
        )
        summary = batch.campaign
        assert summary.timed_out == 1
        assert summary.done == 1  # the warmed bystander completed
        with ResultStore(store_path) as store:
            record = store.point(
                "chaos-hang", scenario_content_digest(specs[0])
            )
            assert record.status == STATUS_TIMED_OUT
            assert "timed out: exceeded wall-clock budget of 2s" in record.error

        # Resume with the fault plan cleared: exactly the hung point reruns.
        monkeypatch.delenv(faults.FAULTS_ENV)
        monkeypatch.delenv(faults.FAULTS_STATE_ENV)
        resumed = run_batch(
            specs, cache=cache_dir, store=store_path, campaign="chaos-hang"
        ).campaign
        assert (resumed.computed, resumed.skipped) == (1, 1)
        assert (resumed.done, resumed.failed, resumed.timed_out) == (2, 0, 0)
        assert statuses(store_path, "chaos-hang")["done"] == 2

    def test_transient_solver_error_retries_to_done(self, tmp_path, monkeypatch):
        """Two injected solver crashes are absorbed by a 2-retry budget."""
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=2")
        store_path = tmp_path / "store.sqlite"
        spec = tiny_spec("flaky-point")

        summary = run_batch(
            [spec],
            parallel=False,
            use_cache=False,
            store=store_path,
            campaign="chaos-transient",
            retries=2,
            retry_backoff_s=0.01,
        ).campaign
        assert (summary.done, summary.failed, summary.retried) == (1, 0, 2)
        with ResultStore(store_path) as store:
            record = store.point(
                "chaos-transient", scenario_content_digest(spec)
            )
            assert record.status == STATUS_DONE
            assert record.attempts == 3  # two injected failures + the success

    def test_corrupted_cache_entry_degrades_to_recompute(self, tmp_path, monkeypatch):
        """Post-write corruption is quarantined on the next read, and the
        recomputed result is identical to the uncorrupted one."""
        # Armed via the environment: run_batch (re)configures from
        # $REPRO_FAULTS in the parent, so an in-process configure() would
        # be disarmed at entry.
        monkeypatch.setenv(faults.FAULTS_ENV, "cache.corrupt:times=1")
        cache = StageCache(root=tmp_path / "cache")
        spec = tiny_spec("bitrot")

        first = run_batch([spec], cache=cache, parallel=False).results[0]
        assert faults.fire("cache.corrupt", key="any") is False  # budget spent

        second = run_batch([spec], cache=cache, parallel=False).results[0]
        assert cache.stats.quarantined == 1
        assert second.annual_energy_mwh == pytest.approx(first.annual_energy_mwh)
        quarantined = list((cache.root / "_quarantine").rglob("*.quarantined"))
        assert quarantined  # preserved for post-mortem, invisible to lookups

    def test_store_io_error_is_absorbed_by_write_retries(self, tmp_path):
        """An injected ``sqlite3.OperationalError`` never surfaces: the
        store's write loop retries past it."""
        faults.configure("store.io:times=1")
        with ResultStore(tmp_path / "store.sqlite") as store:
            enrolled = store.enroll("chaos-io", [tiny_spec("io-point")])
        assert [record.status for record in enrolled] == ["pending"]


# ---------------------------------------------------------------------------
# Graceful shutdown on SIGTERM
# ---------------------------------------------------------------------------


_SIGTERM_VICTIM = textwrap.dedent(
    """
    import sys, time

    sys.path.insert(0, {src!r})
    from repro.runner import get_solver, register_solver, run_batch
    from repro.gis import RoofSpec
    from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec

    def stall(problem, options, suitability):
        time.sleep(120.0)
        return get_solver("greedy")(problem, options, suitability)

    register_solver("stall-test", stall, overwrite=True)
    spec = ScenarioSpec(
        name="stalled",
        roof=RoofSpec(name="stalled-roof", width_m=6.0, depth_m=4.0,
                      tilt_deg=30.0, azimuth_deg=0.0),
        n_modules=2, n_series=2, grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name="stall-test"),
    )
    try:
        run_batch([spec], parallel=False, use_cache=False,
                  store={store!r}, campaign="sig")
    except KeyboardInterrupt:
        sys.exit(130)
    sys.exit(0)
    """
)


class TestSigtermShutdown:
    def test_sigterm_marks_inflight_points_and_exits_cleanly(self, tmp_path):
        """SIGTERM mid-point: exit code 130, the in-flight point is recorded
        ``failed ("interrupted...")``, and no ``running`` row survives."""
        store_path = tmp_path / "store.sqlite"
        script = tmp_path / "victim.py"
        src = str(Path(__file__).resolve().parents[1] / "src")
        script.write_text(
            _SIGTERM_VICTIM.format(src=src, store=str(store_path)), encoding="utf-8"
        )
        process = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={**os.environ, "REPRO_STORE_PATH": str(store_path)},
        )
        try:
            # Wait until the point is genuinely in flight (``running`` row).
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if store_path.exists():
                    try:
                        with ResultStore(store_path) as store:
                            if store.status_counts("sig")["running"]:
                                break
                    except ConfigurationError:
                        pass
                time.sleep(0.1)
            else:
                pytest.fail("victim never started running its point")

            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60.0)
        finally:
            process.kill()

        assert process.returncode == 130, stderr.decode()
        counts = statuses(store_path, "sig")
        assert counts["running"] == 0
        assert counts["failed"] == 1
        with ResultStore(store_path) as store:
            (record,) = store.points("sig", STATUS_FAILED)
            assert "interrupted" in record.error


# ---------------------------------------------------------------------------
# Stale-lease reclamation mid-run
# ---------------------------------------------------------------------------


class TestStaleLeaseReclamation:
    def test_dead_drivers_stale_row_is_adopted_mid_run(self, tmp_path):
        """A ``running`` row whose heartbeat went silent (dead driver) is
        reclaimed by a live driver's tick and finished in the same run."""
        def paced(problem, options, suitability):
            time.sleep(0.5)
            return get_solver("greedy")(problem, options, suitability)

        register_solver("paced-test", paced, overwrite=True)
        store_path = tmp_path / "store.sqlite"
        specs = [tiny_spec(f"fleet-{i}", solver="paced-test") for i in range(4)]
        victim_digest = scenario_content_digest(specs[-1])

        def dead_driver() -> None:
            # Once the run is demonstrably under way (first point done),
            # another -- already dead -- driver's lease appears on the last
            # point with a heartbeat far in the past.  The last point will
            # not start for two more paced points, so the driver's reclaim
            # tick (every 0.2 s) sees the stale row long before then.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    with ResultStore(store_path) as other:
                        if other.status_counts("reclaim")["done"] >= 1:
                            break
                except ConfigurationError:
                    pass
                time.sleep(0.05)
            with ResultStore(store_path) as other:
                other.mark_running(
                    "reclaim", victim_digest, lease_owner="deadhost:9999"
                )
            conn = sqlite3.connect(store_path)
            try:
                conn.execute(
                    "UPDATE points SET heartbeat_ts = heartbeat_ts - 1000 "
                    "WHERE campaign='reclaim' AND digest=?",
                    (victim_digest,),
                )
                conn.commit()
            finally:
                conn.close()

        thread = threading.Thread(target=dead_driver, daemon=True)
        thread.start()
        summary = run_batch(
            specs,
            cache=tmp_path / "cache",
            parallel=False,
            store=store_path,
            campaign="reclaim",
            heartbeat_s=0.2,
            stale_after_s=0.3,
        ).campaign
        thread.join(timeout=10.0)

        assert summary.reclaimed == 1
        assert (summary.done, summary.failed) == (4, 0)
        counts = statuses(store_path, "reclaim")
        assert counts["done"] == 4
        assert counts["running"] == 0


# ---------------------------------------------------------------------------
# Wall-clock budgets
# ---------------------------------------------------------------------------


class TestTimeouts:
    def test_in_memory_timeout_raises(self):
        with pytest.raises(ScenarioExecutionError, match="timed out: exceeded"):
            run_batch(
                [tiny_spec("slowpoke")],
                parallel=False,
                use_cache=False,
                timeout_s=0.001,
            )

    def test_campaign_timeout_is_terminal_after_retries(self, tmp_path):
        spec = tiny_spec("over-budget")
        store_path = tmp_path / "store.sqlite"
        summary = run_batch(
            [spec],
            parallel=False,
            use_cache=False,
            store=store_path,
            campaign="budget",
            timeout_s=0.001,
            retries=1,
        ).campaign
        assert (summary.timed_out, summary.retried, summary.done) == (1, 1, 0)
        with ResultStore(store_path) as store:
            record = store.point("budget", scenario_content_digest(spec))
            assert record.status == STATUS_TIMED_OUT
            assert record.attempts == 2

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout_s"):
            run_batch([tiny_spec("x")], parallel=False, timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="retry_backoff_s"):
            run_batch([tiny_spec("x")], parallel=False, retry_backoff_s=-1.0)

    def test_sweep_plan_carries_timeout(self):
        plan = SweepPlan(
            name="budgeted",
            base=tiny_spec("base"),
            axes=(SweepAxis("n_modules", (2, 3)),),
            timeout_s=45.0,
        )
        restored = SweepPlan.from_json(plan.to_json())
        assert restored.timeout_s == 45.0
        # Plans without a budget keep serialising byte-for-byte as before.
        unbudgeted = SweepPlan(
            name="plain", base=tiny_spec("base"), axes=(SweepAxis("n_modules", (2,)),)
        )
        assert "timeout_s" not in unbudgeted.to_dict()
        with pytest.raises(ConfigurationError, match="timeout_s"):
            SweepPlan(
                name="bad",
                base=tiny_spec("base"),
                axes=(SweepAxis("n_modules", (2,)),),
                timeout_s=0.0,
            )


# ---------------------------------------------------------------------------
# Corrupt stage-cache entries (satellite: every corruption is a quiet miss)
# ---------------------------------------------------------------------------


class _ArrayedValue:
    """A cacheable object whose bulk array rides in an ``.npy`` sidecar."""

    __cache_array_fields__ = ("data",)

    def __init__(self, data, tag):
        self.data = data
        self.tag = tag


class TestCorruptCacheEntries:
    PAYLOAD = {"key": "integrity"}

    def _cache(self, tmp_path, **kwargs) -> StageCache:
        return StageCache(root=tmp_path / "cache", **kwargs)

    def test_truncated_pickle_quarantines_to_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put("stage", self.PAYLOAD, {"value": 42})
        path = cache.path_for("stage", self.PAYLOAD)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])

        value, hit = cache.get("stage", self.PAYLOAD)
        assert (value, hit) == (None, False)
        assert cache.stats.quarantined == 1
        assert not path.exists()  # moved out of the lookup path
        assert list((cache.root / "_quarantine" / "stage").glob("*.quarantined"))

    def test_same_size_pickle_bitrot_quarantines_to_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put("stage", self.PAYLOAD, {"value": 42})
        path = cache.path_for("stage", self.PAYLOAD)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))  # same size, different content

        assert cache.get("stage", self.PAYLOAD) == (None, False)
        assert cache.stats.quarantined == 1

    def test_missing_manifest_quarantines_to_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put("stage", self.PAYLOAD, {"value": 42})
        path = cache.path_for("stage", self.PAYLOAD)
        path.with_name(f"{path.stem}.sum.json").unlink()

        assert cache.get("stage", self.PAYLOAD) == (None, False)
        assert cache.stats.quarantined == 1

    def test_truncated_sidecar_quarantines_to_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put("stage", self.PAYLOAD, _ArrayedValue(np.arange(64.0), "tagged"))
        path = cache.path_for("stage", self.PAYLOAD)
        sidecar = path.with_name(f"{path.stem}.data.npy")
        raw = sidecar.read_bytes()
        sidecar.write_bytes(raw[: len(raw) - 16])

        assert cache.get("stage", self.PAYLOAD) == (None, False)
        assert cache.stats.quarantined == 1
        # The sidecar is quarantined along with the (healthy) pickle: a
        # partial entry must never re-poison a future lookup.
        assert not sidecar.exists() and not path.exists()

    def test_same_size_sidecar_bitrot_needs_full_verification(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put("stage", self.PAYLOAD, _ArrayedValue(np.arange(64.0), "tagged"))
        path = cache.path_for("stage", self.PAYLOAD)
        sidecar = path.with_name(f"{path.stem}.data.npy")
        raw = bytearray(sidecar.read_bytes())
        raw[-1] ^= 0xFF  # flip a data byte, keep the size
        sidecar.write_bytes(bytes(raw))

        # ``full`` verification streams the sidecar through SHA-256 and
        # catches same-size bit rot ($REPRO_CACHE_VERIFY=full).
        full = StageCache(root=cache.root, verify="full")
        assert full.get("stage", self.PAYLOAD) == (None, False)
        assert full.stats.quarantined == 1

    def test_partial_atomic_write_leftovers_are_plain_misses(self, tmp_path):
        """A crash mid-``put`` leaves ``.tmp`` files and maybe sidecars but
        no pickle: an ordinary miss, nothing to quarantine."""
        cache = self._cache(tmp_path)
        path = cache.path_for("stage", self.PAYLOAD)
        path.parent.mkdir(parents=True)
        (path.parent / f"{path.stem}abc123.tmp").write_bytes(b"half a write")
        path.with_name(f"{path.stem}.data.npy").write_bytes(b"orphan sidecar")

        assert cache.get("stage", self.PAYLOAD) == (None, False)
        assert cache.stats.quarantined == 0
        assert cache.entry_count() == 0

    def test_corruption_never_raises_and_recompute_repopulates(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put("stage", self.PAYLOAD, {"value": 1})
        cache.path_for("stage", self.PAYLOAD).write_bytes(b"\x00garbage")

        value, hit = cache.get_or_compute("stage", self.PAYLOAD, lambda: {"value": 2})
        assert (value, hit) == ({"value": 2}, False)
        # The repopulated entry is healthy again.
        assert cache.get("stage", self.PAYLOAD) == ({"value": 2}, True)


# ---------------------------------------------------------------------------
# Solver fallback chains (graceful degradation)
# ---------------------------------------------------------------------------


def _register_chaos_solvers() -> None:
    def failing(problem, options, suitability):
        raise RuntimeError("simulated solver crash")

    def sleepy_failing(problem, options, suitability):
        time.sleep(0.05)
        raise RuntimeError("simulated slow solver crash")

    register_solver("chaos-failing", failing, overwrite=True)
    register_solver("chaos-sleepy", sleepy_failing, overwrite=True)


class TestFallbackChains:
    def test_degraded_result_carries_provenance(self):
        _register_chaos_solvers()
        spec = tiny_spec("degrade-me")
        spec = ScenarioSpec.from_dict(
            {**spec.to_dict(), "solver": {"name": "chaos-failing", "fallback": ["greedy"]}}
        )
        result = run_batch([spec], parallel=False, use_cache=False).results[0]
        assert result.degraded is True
        assert result.fallback_solver == "greedy"
        assert "[degraded -> greedy]" in result.report()

    def test_campaign_accounts_degraded_points(self, tmp_path):
        _register_chaos_solvers()
        spec = tiny_spec("degrade-me")
        spec = ScenarioSpec.from_dict(
            {**spec.to_dict(), "solver": {"name": "chaos-failing", "fallback": ["greedy"]}}
        )
        store_path = tmp_path / "store.sqlite"
        summary = run_batch(
            [spec],
            parallel=False,
            use_cache=False,
            store=store_path,
            campaign="degraded",
        ).campaign
        assert (summary.done, summary.degraded) == (1, 1)
        assert "degraded 1" in summary.report()
        with ResultStore(store_path) as store:
            record = store.point("degraded", scenario_content_digest(spec))
            assert record.degraded is True
            assert record.fallback_solver == "greedy"

    def test_configuration_error_propagates_immediately(self, small_problem):
        _register_chaos_solvers()
        with pytest.raises(ConfigurationError, match="no-such-solver"):
            solve_with_fallback(
                small_problem, "chaos-failing", fallback=("no-such-solver",)
            )

    def test_exhausted_budget_skips_to_the_last_entry(self, small_problem):
        _register_chaos_solvers()
        outcome = solve_with_fallback(
            small_problem,
            "chaos-sleepy",
            fallback=("chaos-failing", "greedy"),
            budget_s=0.01,
        )
        assert outcome.degraded is True
        assert outcome.fallback_solver == "greedy"
        assert len(outcome.failures) == 2
        assert "simulated slow solver crash" in outcome.failures[0]
        assert "skipped (chain budget 0.01s exhausted)" in outcome.failures[1]

    def test_every_entry_failing_raises_the_last_error(self, small_problem):
        _register_chaos_solvers()
        with pytest.raises(RuntimeError, match="simulated solver crash"):
            solve_with_fallback(small_problem, "chaos-failing", fallback=())


# ---------------------------------------------------------------------------
# Store doctor: audit and repair
# ---------------------------------------------------------------------------


class TestDoctor:
    def _corrupt(self, store_path: Path, sql: str, params: tuple) -> None:
        conn = sqlite3.connect(store_path)
        try:
            conn.execute(sql, params)
            conn.commit()
        finally:
            conn.close()

    def test_healthy_store_reports_no_issues(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.enroll("camp", [tiny_spec("a")])
            report = store.integrity_report()
        assert report["issues"] == []
        assert report["sqlite_ok"] is True

    def test_report_and_repair_cover_every_corruption_class(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        specs = [tiny_spec("ok"), tiny_spec("bad-result"), tiny_spec("bad-spec")]
        with ResultStore(store_path) as store:
            store.enroll("camp", specs)
            digests = [scenario_content_digest(spec) for spec in specs]
            store.mark_running("camp", digests[0], lease_owner="deadhost:1")
        # Age the running row's heartbeat past any stale threshold, corrupt
        # one done row's result payload and one row's spec payload.
        self._corrupt(
            store_path,
            "UPDATE points SET heartbeat_ts = heartbeat_ts - 10000 WHERE digest=?",
            (digests[0],),
        )
        self._corrupt(
            store_path,
            "UPDATE points SET status='done', result='{broken' WHERE digest=?",
            (digests[1],),
        )
        self._corrupt(
            store_path,
            "UPDATE points SET spec='not json' WHERE digest=?",
            (digests[2],),
        )

        with ResultStore(store_path) as store:
            report = store.integrity_report("camp", stale_after_s=300.0)
            assert ("camp", digests[0]) in report["stale_running"]
            assert ("camp", digests[1]) in report["corrupt_results"]
            assert ("camp", digests[2]) in report["corrupt_specs"]
            assert len(report["issues"]) == 3

            counts = store.repair("camp", stale_after_s=300.0)
            assert counts == {
                "results_discarded": 1,
                "stale_reclaimed": 1,
                "specs_deleted": 1,
            }
            # Demoted rows resume through the normal retry machinery; the
            # unrecoverable spec row is gone.
            assert store.point("camp", digests[0]).status == STATUS_FAILED
            record = store.point("camp", digests[1])
            assert record.status == STATUS_FAILED
            assert "doctor" in record.error
            assert store.status_counts("camp")["pending"] == 0
            assert len(store.points("camp")) == 2
            assert store.integrity_report("camp", stale_after_s=300.0)["issues"] == []

    def test_cli_doctor_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        store_path = tmp_path / "store.sqlite"
        with ResultStore(store_path) as store:
            store.enroll("camp", [tiny_spec("a")])
            store.mark_running(
                "camp", scenario_content_digest(tiny_spec("a")), lease_owner="dead:1"
            )
        self._corrupt(
            store_path,
            "UPDATE points SET heartbeat_ts = heartbeat_ts - 10000 WHERE campaign=?",
            ("camp",),
        )

        assert main(["campaign", "doctor", "--store", str(store_path)]) == 1
        out = capsys.readouterr().out
        assert "stale running" in out

        assert (
            main(["campaign", "doctor", "--store", str(store_path), "--repair"]) == 0
        )
        out = capsys.readouterr().out
        assert "1 stale lease(s) reclaimed" in out

        assert main(["campaign", "doctor", "--store", str(store_path)]) == 0
        assert "no issues found" in capsys.readouterr().out
