"""Tests of the telemetry layer: spans, shard merging, metrics, CLI surface.

The contract under test is the observability one: tracing disabled is a
true no-op (no files, null spans), tracing enabled yields one coherent
span tree per scenario even across worker processes, rollups land in the
campaign store's metrics table, and the CLI can render and convert the
resulting traces.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import telemetry
from repro.cli import main
from repro.gis import RoofSpec
from repro.runner import PIPELINE_STAGES, ResultStore, run_batch, run_scenario
from repro.runner.store import (
    METRIC_KIND_COUNTER,
    METRIC_KIND_STAGE_RECOMPUTE_TIME,
    METRIC_KIND_STAGE_TIME,
    CampaignSummary,
)
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec
from repro.telemetry import (
    MetricStats,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    chrome_trace,
    iter_spans,
    merge_trace,
    quantile,
    read_trace,
    render_summary,
    rollup_spans,
    shard_path_for,
    span,
    trace_event,
)


def tiny_spec(name: str, solver: str = "greedy", n_modules: int = 2) -> ScenarioSpec:
    """A seconds-scale scenario with a roof unique to ``name``."""
    return ScenarioSpec(
        name=name,
        roof=RoofSpec(
            name=f"{name}-roof",
            width_m=6.0,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=n_modules,
        n_series=n_modules,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name=solver),
    )


@pytest.fixture()
def trace_path(tmp_path):
    """Enable tracing to a per-test path (the autouse fixture disables it after).

    ``set_env`` stays on (the default) because the environment variable is
    the propagation channel to worker processes.
    """
    path = tmp_path / "trace.jsonl"
    telemetry.configure(path)
    return path


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_is_null_span_and_touches_no_file(self, tmp_path):
        assert not telemetry.tracing_enabled()
        sp = span("anything", key="value")
        assert sp is NULL_SPAN
        assert sp.active is False
        with sp as inner:
            inner.set(more=1)
        trace_event("ignored", x=2)
        assert list(tmp_path.iterdir()) == []

    def test_spans_nest_and_record_parent_ids(self, trace_path):
        with span("outer", depth=0):
            with span("inner"):
                trace_event("tick", n=1)
        telemetry.active_tracer().flush()
        merge_trace(trace_path)
        events = read_trace(trace_path)
        by_name = {event["name"]: event for event in events}
        outer, inner, tick = by_name["outer"], by_name["inner"], by_name["tick"]
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert tick["parent"] == inner["id"]
        assert tick["type"] == "event" and tick["attrs"] == {"n": 1}
        pid = os.getpid()
        assert all(event["pid"] == pid for event in events)
        assert all(event["id"].startswith(f"{pid}-") for event in events)
        assert outer["dur"] >= inner["dur"] >= 0.0

    def test_exception_closes_span_with_error_attr_and_propagates(self, trace_path):
        with pytest.raises(ValueError, match="boom"):
            with span("failing", stage="solar"):
                raise ValueError("boom")
        # The span stack emptied, so the tracer flushed on exit.
        merge_trace(trace_path)
        (failing,) = read_trace(trace_path)
        assert failing["name"] == "failing"
        assert failing["attrs"]["error"] == "ValueError"
        assert failing["attrs"]["stage"] == "solar"
        # The context restored: new spans are roots again.
        with span("after"):
            pass
        merge_trace(trace_path)
        after = [e for e in read_trace(trace_path) if e["name"] == "after"]
        assert after[0]["parent"] is None

    def test_timestamps_are_monotonic_within_a_process(self, trace_path):
        for index in range(3):
            with span("step", index=index):
                pass
        merge_trace(trace_path)
        stamps = [event["ts"] for event in read_trace(trace_path)]
        assert stamps == sorted(stamps)

    def test_merge_is_idempotent_and_tolerates_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        shard = shard_path_for(path, 111)
        good = {"type": "span", "name": "a", "id": "111-1", "parent": None,
                "pid": 111, "ts": 1.0, "dur": 0.5}
        shard.write_text(json.dumps(good) + "\n{truncated", encoding="utf-8")
        assert merge_trace(path) == path
        assert not shard.exists()
        first = read_trace(path)
        assert merge_trace(path) == path
        assert read_trace(path) == first == [good]

    def test_merge_with_nothing_to_do_returns_none(self, tmp_path):
        assert merge_trace(tmp_path / "missing.jsonl") is None

    def test_configure_from_env_round_trip(self, tmp_path, monkeypatch):
        path = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv(telemetry.TRACE_ENV, str(path))
        tracer = telemetry.configure_from_env()
        assert tracer is not None and tracer.path == path
        # Idempotent: same env keeps the same tracer.
        assert telemetry.configure_from_env() is tracer
        monkeypatch.delenv(telemetry.TRACE_ENV)
        assert telemetry.configure_from_env() is None
        assert not telemetry.tracing_enabled()

    def test_shard_paths_are_per_pid(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert shard_path_for(path, 42).name == "trace.jsonl.shard-42.jsonl"
        tracer = Tracer(path)
        assert tracer.shard_path == shard_path_for(path, os.getpid())


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_quantile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 1.0) == 4.0
        assert quantile(samples, 0.5) == pytest.approx(2.5)

    def test_stats_from_samples(self):
        stats = MetricStats.from_samples("solar", [0.1, 0.2, 0.3, 0.4])
        assert stats.count == 4
        assert stats.total == pytest.approx(1.0)
        assert stats.minimum == pytest.approx(0.1)
        assert stats.maximum == pytest.approx(0.4)
        assert stats.p50 == pytest.approx(0.25)
        assert stats.mean == pytest.approx(0.25)
        payload = stats.as_dict()
        assert payload["name"] == "solar" and payload["p99"] >= payload["p50"]

    def test_registry_and_rollup(self):
        registry = MetricsRegistry()
        registry.observe("stage", 1.0)
        registry.observe("stage", 3.0)
        registry.count("events")
        stats = registry.all_stats()["stage"]
        assert stats.count == 2 and stats.total == pytest.approx(4.0)
        assert registry.counters() == {"events": 1.0}
        spans = [
            {"type": "span", "name": "cache.get", "dur": 0.1,
             "attrs": {"stage": "solar", "hit": True}},
            {"type": "span", "name": "cache.get", "dur": 0.2,
             "attrs": {"stage": "solar", "hit": False}},
            {"type": "span", "name": "solar", "dur": 1.5, "attrs": {"error": "OSError"}},
        ]
        rolled = rollup_spans(spans)
        counters = rolled.counters()
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["errors"] == 1
        ratio, lookups = telemetry.cache_hit_ratio(rolled)
        assert ratio == pytest.approx(0.5) and lookups == 2


# ---------------------------------------------------------------------------
# Pipeline instrumentation
# ---------------------------------------------------------------------------


class TestPipelineTracing:
    def test_run_scenario_emits_all_six_stage_spans(self, trace_path, tmp_path):
        result = run_scenario(tiny_spec("traced"), cache=tmp_path / "cache")
        merge_trace(trace_path)
        events = read_trace(trace_path)
        spans = list(iter_spans(events))
        (scenario,) = [s for s in spans if s["name"] == "scenario"]
        children = {s["name"] for s in spans if s["parent"] == scenario["id"]}
        assert children == set(PIPELINE_STAGES)
        assert scenario["attrs"]["scenario"] == "traced"
        # Cache activity is recorded under the cacheable stages.
        assert any(s["name"] == "cache.put" for s in spans)
        # Stage wall times are measured regardless of tracing.
        assert set(result.stage_times_s) == set(PIPELINE_STAGES)
        assert all(v >= 0.0 for v in result.stage_times_s.values())

    def test_stage_times_survive_result_round_trip(self, tmp_path):
        result = run_scenario(tiny_spec("round-trip"), cache=tmp_path / "cache")
        clone = type(result).from_dict(result.to_dict())
        assert clone.stage_times_s == result.stage_times_s

    def test_parallel_batch_merges_one_tree_per_point(self, trace_path, tmp_path):
        specs = [tiny_spec(f"par-{i}") for i in range(3)]
        batch = run_batch(specs, cache=tmp_path / "cache", jobs=2, parallel=True)
        assert batch.n_scenarios == 3
        merge_trace(trace_path)  # fold the parent's own late shard
        events = read_trace(trace_path)
        spans = list(iter_spans(events))
        assert telemetry.shard_paths(trace_path) == []
        (batch_span,) = [s for s in spans if s["name"] == "batch"]
        scenarios = [s for s in spans if s["name"] == "scenario"]
        assert len(scenarios) == 3
        parent_pid = os.getpid()
        worker_pids = {s["pid"] for s in scenarios}
        assert parent_pid not in worker_pids
        for scenario in scenarios:
            # Forked workers inherit the batch span as parent: one tree.
            assert scenario["parent"] == batch_span["id"]
            stage_names = sorted(
                s["name"] for s in spans
                if s["parent"] == scenario["id"] and s["name"] in PIPELINE_STAGES
            )
            assert stage_names == sorted(PIPELINE_STAGES)

    def test_campaign_records_metrics_rows(self, trace_path, tmp_path):
        specs = [tiny_spec(f"metrics-{i}") for i in range(2)]
        with ResultStore(tmp_path / "campaigns.sqlite") as store:
            run_batch(
                specs,
                cache=tmp_path / "cache",
                parallel=False,
                store=store,
                campaign="m",
            )
            assert store.latest_metrics_run("m") == 1
            rows = store.metrics("m")
            by_kind_name = {(r["kind"], r["name"]): r for r in rows}
            for stage in PIPELINE_STAGES:
                row = by_kind_name[(METRIC_KIND_STAGE_TIME, stage)]
                assert row["count"] == 2
                assert row["p50"] <= row["p99"] <= row["maximum"] + 1e-12
            assert by_kind_name[(METRIC_KIND_COUNTER, "computed")]["total"] == 2
            assert (METRIC_KIND_STAGE_RECOMPUTE_TIME, "solar") in by_kind_name
            # A second identical run skips every point: no new metrics row.
            run_batch(
                specs, cache=tmp_path / "cache", parallel=False, store=store, campaign="m"
            )
            assert store.latest_metrics_run("m") == 1

    def test_campaign_summary_round_trips_stage_times(self):
        summary = CampaignSummary(
            campaign="x",
            n_points=1,
            done=1,
            computed=1,
            stage_hits={"solar": 1},
            stage_recomputes={"scene": 1},
            stage_hit_time_s={"solar": 0.25},
            stage_recompute_time_s={"scene": 0.75},
        )
        clone = CampaignSummary.from_dict(summary.as_dict())
        assert clone.stage_hit_time_s == {"solar": 0.25}
        assert clone.stage_recompute_time_s == {"scene": 0.75}


# ---------------------------------------------------------------------------
# Summary rendering and chrome export
# ---------------------------------------------------------------------------


def synthetic_events():
    return [
        {"type": "span", "name": "batch", "id": "1-1", "parent": None,
         "pid": 1, "ts": 0.0, "dur": 3.0},
        {"type": "span", "name": "scenario", "id": "2-1", "parent": "1-1",
         "pid": 2, "ts": 0.1, "dur": 2.0, "attrs": {"scenario": "a"}},
        {"type": "span", "name": "solar", "id": "2-2", "parent": "2-1",
         "pid": 2, "ts": 0.2, "dur": 1.5},
        {"type": "event", "name": "greedy.step", "id": "2-3", "parent": "2-2",
         "pid": 2, "ts": 0.3, "attrs": {"module": 0}},
        {"type": "span", "name": "lost", "id": "9-9", "parent": "8-8",
         "pid": 9, "ts": 0.4, "dur": 0.25},
    ]


class TestSummaryRendering:
    def test_render_summary_tree_and_slowest(self):
        text = render_summary(synthetic_events(), slowest=2)
        lines = text.splitlines()
        assert lines[0] == "trace: 4 span(s), 1 event(s), 3 process(es)"
        assert any(line.strip().startswith("batch") for line in lines)
        # Children indent one level under their parents.
        assert any(line.startswith("  batch") for line in lines)
        assert any(line.startswith("    scenario") for line in lines)
        assert any(line.startswith("      solar") for line in lines)
        # The span with an unknown parent is grafted in, not dropped.
        assert any("lost" in line for line in lines)
        assert "slowest 2 span(s):" in text
        assert "1. batch 3.000s" in text

    def test_render_summary_empty(self):
        assert render_summary([]) == "trace: no spans recorded"

    def test_chrome_trace_format(self):
        payload = chrome_trace(synthetic_events())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 5
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 4 and len(instant) == 1
        # Timestamps are rebased to zero and scaled to microseconds.
        assert min(e["ts"] for e in events) == 0.0
        batch = next(e for e in complete if e["name"] == "batch")
        assert batch["dur"] == pytest.approx(3.0e6)
        assert json.loads(json.dumps(payload))  # serialisable as-is


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliTracing:
    def run_traced_run(self, tmp_path, capsys):
        trace = tmp_path / "cli-trace.jsonl"
        spec_path = tmp_path / "spec.json"
        tiny_spec("cli-traced").save(spec_path)
        code = main(
            [
                "run",
                str(spec_path),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return trace

    def test_run_with_trace_flag_writes_merged_trace(self, tmp_path, capsys):
        trace = self.run_traced_run(tmp_path, capsys)
        assert trace.exists()
        assert telemetry.shard_paths(trace) == []
        spans = list(iter_spans(read_trace(trace)))
        assert {s["name"] for s in spans} >= set(PIPELINE_STAGES)
        # --trace is per-invocation: the tracer did not leak.
        assert not telemetry.tracing_enabled()
        assert telemetry.TRACE_ENV not in os.environ

    def test_trace_summary_command(self, tmp_path, capsys):
        trace = self.run_traced_run(tmp_path, capsys)
        assert main(["trace", "summary", str(trace), "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace:")
        assert "scenario" in out and "solar" in out
        assert "slowest 2 span(s):" in out

    def test_trace_export_command(self, tmp_path, capsys):
        trace = self.run_traced_run(tmp_path, capsys)
        output = tmp_path / "chrome.json"
        code = main(
            ["trace", "export", str(trace), "--format", "chrome", "--output", str(output)]
        )
        assert code == 0
        assert "written to" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["traceEvents"]
        # Without --output the JSON goes to stdout.
        assert main(["trace", "export", str(trace)]) == 0
        assert json.loads(capsys.readouterr().out)["traceEvents"]

    def test_trace_commands_reject_missing_or_empty_files(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summary", str(empty)]) == 2
        assert "contains no events" in capsys.readouterr().err

    def test_campaign_status_prints_stage_latency_table(self, tmp_path, capsys):
        store = str(tmp_path / "campaigns.sqlite")
        spec_path = tmp_path / "spec.json"
        tiny_spec("lat").save(spec_path)
        args = [
            "campaign", "run", "lat", str(spec_path),
            "--store", store, "--cache-dir", str(tmp_path / "cache"), "--serial",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "stage wall time (this run):" in out
        assert main(["campaign", "status", "lat", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "stage latency (metrics run 1):" in out
        for stage in PIPELINE_STAGES:
            assert stage in out

    def test_log_level_env_silences_progress_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(telemetry.LOG_LEVEL_ENV, "ERROR")
        assert main(["list-scenarios"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        # Errors still surface.
        assert main(["run", "no-such-scenario"]) == 2
        assert "error:" in capsys.readouterr().err
        # Back at the default level output returns.
        monkeypatch.delenv(telemetry.LOG_LEVEL_ENV)
        assert main(["list-scenarios"]) == 0
        assert "built-in scenarios" in capsys.readouterr().out
