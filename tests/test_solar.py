"""Unit tests for the solar substrate (position, clear sky, decomposition,
transposition, shading, time grid, irradiance field)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SOLAR_CONSTANT, TURIN_LATITUDE
from repro.errors import SolarModelError
from repro.gis import DigitalSurfaceModel
from repro.solar import (
    TimeGrid,
    clearness_index,
    clearsky_irradiance,
    compute_horizon_map,
    compute_solar_position,
    daylight_hours,
    decompose_ghi,
    equation_of_time_minutes,
    erbs_diffuse_fraction,
    fast_time_grid,
    incidence_cosine,
    paper_time_grid,
    plane_of_array,
    relative_air_mass,
    shadow_fraction_map,
    solar_declination,
    sunrise_sunset_hour,
)
from repro.solar.linke import LinkeTurbidityProfile


class TestTimeGrid:
    def test_paper_grid_size(self):
        grid = paper_time_grid()
        assert grid.n_samples == 365 * 96
        assert grid.annual_scale == pytest.approx(1.0)

    def test_day_stride_scaling(self):
        grid = TimeGrid(step_minutes=60.0, day_stride=7)
        assert grid.n_days == 53
        assert grid.annual_scale == pytest.approx(365 / 53)

    def test_invalid_step(self):
        with pytest.raises(SolarModelError):
            TimeGrid(step_minutes=0.0)
        with pytest.raises(SolarModelError):
            TimeGrid(step_minutes=7.0)  # does not divide 24 h

    def test_invalid_stride(self):
        with pytest.raises(SolarModelError):
            TimeGrid(day_stride=0)

    def test_sample_access(self):
        grid = fast_time_grid()
        day, hour = grid.sample(0)
        assert day == 1.0
        assert 0.0 < hour < 1.0
        with pytest.raises(SolarModelError):
            grid.sample(grid.n_samples)

    def test_energy_integration_constant_power(self):
        grid = TimeGrid(step_minutes=60.0, day_stride=1)
        energy = grid.integrate_energy_wh(np.full(grid.n_samples, 100.0))
        assert energy == pytest.approx(100.0 * 8760.0)

    def test_energy_integration_subsampled_is_unbiased(self):
        grid = TimeGrid(step_minutes=60.0, day_stride=5)
        energy = grid.integrate_energy_wh(np.full(grid.n_samples, 100.0))
        assert energy == pytest.approx(100.0 * 8760.0, rel=1e-9)

    def test_energy_integration_length_mismatch(self):
        grid = fast_time_grid()
        with pytest.raises(SolarModelError):
            grid.integrate_energy_wh(np.zeros(3))

    def test_day_fraction_monotone(self):
        grid = fast_time_grid()
        fraction = grid.day_fraction()
        assert np.all(np.diff(fraction) >= 0)
        assert fraction[0] >= 0 and fraction[-1] <= 1


class TestSolarPosition:
    def test_declination_range_and_solstices(self):
        days = np.arange(1, 366)
        decl = solar_declination(days)
        assert decl.max() == pytest.approx(23.45, abs=0.5)
        assert decl.min() == pytest.approx(-23.45, abs=0.5)
        assert np.argmax(decl) + 1 == pytest.approx(172, abs=4)

    def test_equation_of_time_bounds(self):
        eot = equation_of_time_minutes(np.arange(1, 366))
        assert eot.max() < 17.5 and eot.min() > -15.0

    def test_noon_elevation_turin_summer(self):
        position = compute_solar_position(TURIN_LATITUDE, np.array([172.0]), np.array([12.0]))
        expected = 90.0 - TURIN_LATITUDE + 23.4
        assert position.elevation_deg[0] == pytest.approx(expected, abs=1.0)

    def test_noon_azimuth_is_south(self):
        position = compute_solar_position(TURIN_LATITUDE, np.array([100.0]), np.array([12.0]))
        assert abs(position.azimuth_deg[0]) < 2.0

    def test_morning_sun_is_east(self):
        position = compute_solar_position(TURIN_LATITUDE, np.array([172.0]), np.array([8.0]))
        # Convention: azimuth negative towards East.
        assert position.azimuth_deg[0] < -30.0

    def test_midnight_sun_below_horizon(self):
        position = compute_solar_position(TURIN_LATITUDE, np.array([172.0]), np.array([0.5]))
        assert position.elevation_deg[0] < 0
        assert not position.is_up[0]

    def test_extraterrestrial_close_to_solar_constant(self):
        position = compute_solar_position(TURIN_LATITUDE, np.arange(1, 366), np.full(365, 12.0))
        assert np.all(np.abs(position.extraterrestrial_normal - SOLAR_CONSTANT) < 50)

    def test_latitude_validation(self):
        with pytest.raises(SolarModelError):
            compute_solar_position(120.0, np.array([1.0]), np.array([12.0]))

    def test_sunrise_sunset_symmetry(self):
        sunrise, sunset = sunrise_sunset_hour(TURIN_LATITUDE, 100.0)
        assert sunrise < 12.0 < sunset
        assert (12.0 - sunrise) == pytest.approx(sunset - 12.0, abs=1e-9)

    def test_daylight_longer_in_summer(self):
        assert daylight_hours(TURIN_LATITUDE, 172) > daylight_hours(TURIN_LATITUDE, 355)

    def test_polar_day_and_night(self):
        assert sunrise_sunset_hour(80.0, 172) == (0.0, 24.0)
        assert sunrise_sunset_hour(80.0, 355) == (12.0, 12.0)


class TestClearSky:
    def test_air_mass_one_at_zenith(self):
        assert relative_air_mass(np.array([90.0]))[0] == pytest.approx(1.0, abs=0.01)

    def test_air_mass_grows_towards_horizon(self):
        masses = relative_air_mass(np.array([90.0, 30.0, 10.0, 2.0]))
        assert np.all(np.diff(masses) > 0)

    def test_air_mass_infinite_below_horizon(self):
        assert np.isinf(relative_air_mass(np.array([-5.0]))[0])

    def test_clearsky_magnitudes_at_noon(self):
        irradiance = clearsky_irradiance(
            np.array([1361.0]), np.array([65.0]), np.array([3.0])
        )
        assert 750.0 < irradiance.beam_normal[0] < 1100.0
        assert 50.0 < irradiance.diffuse_horizontal[0] < 200.0
        assert irradiance.global_horizontal[0] > irradiance.diffuse_horizontal[0]

    def test_clearsky_zero_at_night(self):
        irradiance = clearsky_irradiance(
            np.array([1361.0]), np.array([-10.0]), np.array([3.0])
        )
        assert irradiance.beam_normal[0] == 0.0
        assert irradiance.global_horizontal[0] == 0.0

    def test_higher_turbidity_means_less_beam(self):
        clean = clearsky_irradiance(np.array([1361.0]), np.array([45.0]), np.array([2.0]))
        hazy = clearsky_irradiance(np.array([1361.0]), np.array([45.0]), np.array([6.0]))
        assert hazy.beam_normal[0] < clean.beam_normal[0]
        assert hazy.diffuse_horizontal[0] > clean.diffuse_horizontal[0]

    def test_invalid_turbidity(self):
        with pytest.raises(SolarModelError):
            clearsky_irradiance(np.array([1361.0]), np.array([45.0]), np.array([0.0]))

    def test_linke_profile_interpolation(self):
        profile = LinkeTurbidityProfile.turin_default()
        values = profile.value_for_day(np.array([15.5, 196.5]))
        assert values[0] == pytest.approx(2.6, abs=0.05)
        assert values[1] == pytest.approx(3.9, abs=0.05)

    def test_linke_profile_validation(self):
        with pytest.raises(SolarModelError):
            LinkeTurbidityProfile.from_monthly([3.0] * 11)
        with pytest.raises(SolarModelError):
            LinkeTurbidityProfile.from_monthly([0.0] + [3.0] * 11)

    def test_linke_constant_profile(self):
        profile = LinkeTurbidityProfile.constant(2.5)
        assert profile.annual_mean() == pytest.approx(2.5)


class TestDecomposition:
    def test_clearness_index_range(self):
        kt = clearness_index(np.array([500.0]), np.array([1361.0]), np.array([45.0]))
        assert 0.0 < kt[0] < 1.0

    def test_clearness_zero_at_night(self):
        kt = clearness_index(np.array([0.0]), np.array([1361.0]), np.array([-5.0]))
        assert kt[0] == 0.0

    def test_erbs_monotone_decreasing(self):
        kd = erbs_diffuse_fraction(np.array([0.1, 0.3, 0.5, 0.7]))
        assert np.all(np.diff(kd) < 0)
        assert np.all((kd >= 0) & (kd <= 1))

    def test_erbs_overcast_mostly_diffuse(self):
        assert erbs_diffuse_fraction(np.array([0.1]))[0] > 0.9

    def test_decompose_energy_closure(self):
        ghi = np.array([600.0])
        elevation = np.array([50.0])
        result = decompose_ghi(ghi, np.array([1361.0]), elevation)
        reconstructed = result.dni[0] * np.sin(np.radians(elevation[0])) + result.dhi[0]
        assert reconstructed == pytest.approx(ghi[0], rel=1e-6)

    def test_decompose_night_is_zero(self):
        result = decompose_ghi(np.array([0.0]), np.array([1361.0]), np.array([-10.0]))
        assert result.dni[0] == 0.0 and result.dhi[0] == 0.0

    def test_decompose_unknown_model(self):
        with pytest.raises(SolarModelError):
            decompose_ghi(np.array([500.0]), np.array([1361.0]), np.array([45.0]), model="foo")

    def test_engerer_model_runs_and_bounded(self):
        result = decompose_ghi(
            np.array([500.0, 100.0]),
            np.array([1361.0, 1361.0]),
            np.array([45.0, 20.0]),
            model="engerer",
            clearsky_ghi=np.array([800.0, 300.0]),
        )
        assert np.all((result.diffuse_fraction >= 0) & (result.diffuse_fraction <= 1))

    def test_shape_mismatch_raises(self):
        with pytest.raises(SolarModelError):
            decompose_ghi(np.array([500.0, 200.0]), np.array([1361.0]), np.array([45.0]))


class TestTransposition:
    def test_incidence_flat_surface_equals_sin_elevation(self):
        cos_inc = incidence_cosine(0.0, 0.0, np.array([30.0]), np.array([0.0]))
        assert cos_inc[0] == pytest.approx(np.sin(np.radians(30.0)))

    def test_incidence_normal_surface(self):
        cos_inc = incidence_cosine(60.0, 0.0, np.array([30.0]), np.array([0.0]))
        assert cos_inc[0] == pytest.approx(1.0)

    def test_incidence_clamped_behind_surface(self):
        cos_inc = incidence_cosine(90.0, 0.0, np.array([30.0]), np.array([180.0]))
        assert cos_inc[0] == 0.0

    def test_invalid_tilt(self):
        with pytest.raises(SolarModelError):
            incidence_cosine(120.0, 0.0, np.array([30.0]), np.array([0.0]))

    def test_south_tilt_boosts_winter_irradiance(self):
        # Low winter sun: a 30 deg south-facing tilt collects more beam than flat.
        poa_flat = plane_of_array(
            np.array([700.0]), np.array([80.0]), np.array([400.0]), np.array([1400.0]),
            0.0, 0.0, np.array([20.0]), np.array([0.0]),
        )
        poa_tilt = plane_of_array(
            np.array([700.0]), np.array([80.0]), np.array([400.0]), np.array([1400.0]),
            30.0, 0.0, np.array([20.0]), np.array([0.0]),
        )
        assert poa_tilt.total[0] > poa_flat.total[0]

    def test_isotropic_and_haydavies_agree_for_zero_dni(self):
        kwargs = dict(
            dni=np.array([0.0]), dhi=np.array([100.0]), ghi=np.array([100.0]),
            extraterrestrial_normal=np.array([1400.0]),
            surface_tilt_deg=30.0, surface_azimuth_deg=0.0,
            solar_elevation_deg=np.array([40.0]), solar_azimuth_deg=np.array([0.0]),
        )
        iso = plane_of_array(sky_model="isotropic", **kwargs)
        hd = plane_of_array(sky_model="haydavies", **kwargs)
        assert iso.sky_diffuse[0] == pytest.approx(hd.sky_diffuse[0], rel=1e-9)

    def test_unknown_sky_model(self):
        with pytest.raises(SolarModelError):
            plane_of_array(
                np.array([0.0]), np.array([0.0]), np.array([0.0]), np.array([1400.0]),
                30.0, 0.0, np.array([40.0]), np.array([0.0]), sky_model="nope",
            )

    def test_ground_reflection_zero_for_flat(self):
        poa = plane_of_array(
            np.array([500.0]), np.array([100.0]), np.array([500.0]), np.array([1400.0]),
            0.0, 0.0, np.array([45.0]), np.array([0.0]),
        )
        assert poa.ground_reflected[0] == pytest.approx(0.0)


class TestShading:
    def flat_dsm_with_wall(self) -> DigitalSurfaceModel:
        elevation = np.zeros((20, 20))
        elevation[:, 12] = 2.0  # a north-south wall at x ~ 4.8 m
        return DigitalSurfaceModel.from_array(elevation, pitch=0.4)

    def test_horizon_shape(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=8, max_distance=8.0)
        assert horizon.horizon_deg.shape == (8, 20, 20)
        assert horizon.n_sectors == 8

    def test_horizon_zero_on_open_flat_ground(self):
        dsm = DigitalSurfaceModel.flat(8.0, 8.0, pitch=0.4)
        horizon = compute_horizon_map(dsm.raster, n_sectors=8, max_distance=6.0)
        assert float(horizon.horizon_deg.max()) == pytest.approx(0.0)
        assert np.allclose(horizon.sky_view_factor(), 1.0)

    def test_wall_raises_horizon_to_its_west(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=16, max_distance=8.0)
        # A cell just west of the wall looking east (azimuth -90) sees a high horizon.
        east_sector = horizon.horizon_at(-90.0)
        assert east_sector[10, 10] > 45.0
        # Looking west from the same cell the horizon is clear.
        west_sector = horizon.horizon_at(90.0)
        assert west_sector[10, 10] == pytest.approx(0.0)

    def test_shadow_mask_sun_below_horizon(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=8, max_distance=8.0)
        assert horizon.shadow_mask(-5.0, 0.0).all()

    def test_wall_shadows_low_eastern_sun(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=16, max_distance=8.0)
        shaded = horizon.shadow_mask(20.0, -90.0)  # low sun in the east
        lit = horizon.shadow_mask(70.0, -90.0)  # high sun in the east
        assert shaded[10, 10]
        assert not lit[10, 10]

    def test_lit_fraction_series_shape_and_range(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=8, max_distance=8.0)
        rows = np.array([10, 10])
        cols = np.array([5, 15])
        lit = horizon.lit_fraction_for_cells(
            rows, cols, np.array([30.0, -10.0, 60.0]), np.array([0.0, 0.0, -90.0])
        )
        assert lit.shape == (3, 2)
        assert set(np.unique(lit)).issubset({0.0, 1.0})
        # Sun below horizon -> nothing is lit.
        assert np.all(lit[1] == 0.0)

    def test_sky_view_lower_near_wall(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=16, max_distance=8.0)
        svf = horizon.sky_view_factor()
        assert svf[10, 11] < svf[10, 2]

    def test_shadow_fraction_map(self):
        dsm = self.flat_dsm_with_wall()
        horizon = compute_horizon_map(dsm.raster, n_sectors=8, max_distance=8.0)
        fraction = shadow_fraction_map(
            horizon, np.array([20.0, 60.0]), np.array([-90.0, 0.0])
        )
        assert fraction.shape == (20, 20)
        assert np.all((fraction >= 0.0) & (fraction <= 1.0))


class TestRoofSolarField:
    def test_field_dimensions(self, small_solar, small_grid, small_time_grid):
        assert small_solar.n_cells == small_grid.n_valid
        assert small_solar.n_time == small_time_grid.n_samples
        # The native representation is daylight compressed: only the sun-up
        # rows are stored, and the exact dense expansion restores the rest.
        assert small_solar.is_compressed
        assert 0 < small_solar.n_daylight < small_solar.n_time
        assert small_solar.irradiance.shape == (
            small_solar.n_daylight,
            small_solar.n_cells,
        )
        assert small_solar.to_dense().shape == (
            small_solar.n_time,
            small_solar.n_cells,
        )

    def test_irradiance_non_negative_and_bounded(self, small_solar):
        assert float(small_solar.irradiance.min()) >= 0.0
        assert float(small_solar.irradiance.max()) < 1400.0

    def test_percentile_map_nan_outside_valid(self, small_solar, small_grid):
        p75 = small_solar.percentile_map(75)
        assert p75.shape == small_grid.shape
        assert np.count_nonzero(np.isfinite(p75)) == small_grid.n_valid

    def test_percentile_map_ordering(self, small_solar):
        p25 = small_solar.percentile_map(25)
        p75 = small_solar.percentile_map(75)
        valid = np.isfinite(p75)
        assert np.all(p75[valid] >= p25[valid] - 1e-6)

    def test_cell_series_accessors(self, small_solar):
        row, col = small_solar.cells[0]
        series = small_solar.irradiance_for_cell(int(row), int(col))
        assert series.shape == (small_solar.n_time,)
        pair = small_solar.irradiance_for_cells(small_solar.cells[:2])
        assert pair.shape == (small_solar.n_time, 2)

    def test_invalid_cell_lookup(self, small_solar, small_grid):
        invalid_cells = np.argwhere(~small_grid.valid_mask)
        if invalid_cells.size:
            row, col = invalid_cells[0]
            with pytest.raises(SolarModelError):
                small_solar.column_of(int(row), int(col))

    def test_annual_insolation_plausible(self, small_solar):
        insolation = small_solar.annual_insolation_map_kwh()
        finite = insolation[np.isfinite(insolation)]
        # Turin-like climate on a 26 deg tilt: a few hundred to ~1700 kWh/m2.
        assert 200.0 < float(np.median(finite)) < 1800.0

    def test_mean_map_below_percentile75(self, small_solar):
        mean_map = small_solar.mean_map()
        p75 = small_solar.percentile_map(75)
        valid = np.isfinite(mean_map)
        # Because the distribution contains nights, the mean is well below p75.
        assert np.mean(mean_map[valid]) < np.mean(p75[valid])
