"""Integration tests: experiment drivers and the end-to-end pipeline.

These run the case-study machinery at a reduced scale (small roofs, coarse
time grids) so the full paper pipeline -- scene, shading, weather, solar
field, both placers, evaluation, reporting -- is exercised in a few seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.experiments import (
    CaseStudyConfig,
    PAPER_TABLE1,
    Table1Config,
    build_problem,
    case_study_specs,
    figure2_iv_curves,
    figure3_module_characteristics,
    figure6_irradiance_map,
    figure7_placements,
    overhead_characterisation,
    prepare_case_study,
    roof1_spec,
    roof2_spec,
    roof3_spec,
    run_table1,
    runtime_sweep,
    summarize_runtime,
)
from repro.errors import ConfigurationError
from repro.gis import simple_residential_roof
from repro.solar import SolarSimulationConfig


@pytest.fixture(scope="module")
def tiny_config() -> CaseStudyConfig:
    """A heavily reduced case-study configuration for integration tests."""
    return CaseStudyConfig(
        scale=0.35,
        grid_pitch=0.2,
        dsm_pitch=0.5,
        time_step_minutes=120.0,
        day_stride=30,
        solar=SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=30.0),
    )


@pytest.fixture(scope="module")
def tiny_study(tiny_config):
    """Roof 2 prepared at the reduced scale."""
    return prepare_case_study(roof2_spec(tiny_config.scale), tiny_config)


class TestCaseStudies:
    def test_specs_have_paper_characteristics(self):
        specs = case_study_specs(1.0)
        assert set(specs) == {"roof1", "roof2", "roof3"}
        for spec in specs.values():
            assert spec.tilt_deg == pytest.approx(26.0)
            assert spec.obstacles
        assert roof1_spec().width_m == pytest.approx(57.4)
        assert roof2_spec().depth_m == pytest.approx(10.2)
        assert roof3_spec().depth_m == pytest.approx(10.4)

    def test_full_scale_grid_matches_table1_dimensions(self):
        from repro.gis import build_roof_scene, make_roof_grid

        scene = build_roof_scene(roof1_spec(1.0), dsm_pitch=1.0)
        grid = make_roof_grid(scene, pitch=0.2)
        assert (grid.n_cols, grid.n_rows) == (287, 51)

    def test_prepared_study_consistency(self, tiny_study):
        assert tiny_study.n_valid > 0
        assert tiny_study.solar.n_cells == tiny_study.grid.n_valid
        assert tiny_study.solar.n_time == tiny_study.weather.n_samples

    def test_roof1_has_smaller_valid_fraction(self, tiny_config):
        study1 = prepare_case_study(roof1_spec(tiny_config.scale), tiny_config)
        study2 = prepare_case_study(roof2_spec(tiny_config.scale), tiny_config)
        fraction1 = study1.n_valid / study1.grid.n_cells
        fraction2 = study2.n_valid / study2.grid.n_cells
        assert fraction1 < fraction2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CaseStudyConfig(scale=0.0)
        with pytest.raises(ConfigurationError):
            CaseStudyConfig(grid_pitch=-0.1)


class TestFigureDrivers:
    def test_figure2_iv_curves(self):
        family = figure2_iv_curves()
        voltages, currents = family.curve(1000.0, 25.0)
        assert voltages.shape == currents.shape
        # Isc grows with irradiance.
        low = family.curve(200.0, 25.0)[1][0]
        high = family.curve(1000.0, 25.0)[1][0]
        assert high > 4 * low

    def test_figure3_characteristics_shape(self):
        chars = figure3_module_characteristics()
        assert chars.pmax_vs_g[-1] == pytest.approx(1.0, rel=1e-6)
        assert chars.isc_vs_g[0] < chars.isc_vs_g[-1]
        # Power decreases with temperature.
        assert np.all(np.diff(chars.pmax_vs_t) < 0)
        # Voc decreases with temperature.
        assert np.all(np.diff(chars.voc_vs_t) < 0)

    def test_overhead_characterisation_matches_paper_order(self):
        overhead = overhead_characterisation()
        # ~0.11 W per metre at 4 A (paper Section V-C).
        assert overhead.loss_per_metre_w == pytest.approx(0.112, rel=1e-6)
        assert np.all(np.diff(overhead.annual_loss_wh) >= 0)
        assert overhead.cost[-1] == pytest.approx(overhead.lengths_m[-1])

    def test_figure6_map(self, tiny_study):
        figure = figure6_irradiance_map(tiny_study)
        assert figure.n_valid == tiny_study.n_valid
        assert figure.variation_coefficient > 0
        assert isinstance(figure.ascii_rendering, str) and figure.ascii_rendering

    def test_figure7_placements(self, tiny_study):
        figure = figure7_placements(tiny_study, n_modules=8)
        assert figure.traditional_map.shape == tiny_study.grid.shape
        assert (figure.proposed_map >= -1).all()
        assert figure.n_modules == 8

    def test_figure7_invalid_count(self, tiny_study):
        with pytest.raises(ConfigurationError):
            figure7_placements(tiny_study, n_modules=0)


class TestTable1:
    def test_run_table1_reduced(self, tiny_config):
        config = Table1Config(module_counts=(8,), series_length=4, case_study=tiny_config)
        results = run_table1(config, roofs=("roof2", "roof3"))
        assert len(results.entries) == 2
        rendered = results.report.render()
        assert "roof2" in rendered and "roof3" in rendered
        for entry in results.entries:
            entry.greedy.placement.validate(entry.problem.grid)
            entry.traditional.placement.validate(entry.problem.grid)
            assert entry.comparison.baseline.annual_energy_wh > 0

    def test_entry_lookup(self, tiny_config):
        config = Table1Config(module_counts=(8,), series_length=4, case_study=tiny_config)
        results = run_table1(config, roofs=("roof2",))
        entry = results.entry("roof2", 8)
        assert entry.n_modules == 8
        with pytest.raises(ConfigurationError):
            results.entry("roof2", 99)

    def test_paper_reference_rows(self):
        assert len(PAPER_TABLE1) == 6
        improvements = [row["improvement_percent"] for row in PAPER_TABLE1]
        assert min(improvements) > 10.0 and max(improvements) < 30.0

    def test_build_problem_uses_series_of_eight(self, tiny_study):
        problem = build_problem(tiny_study, 16, 8)
        assert problem.topology.n_series == 8
        assert problem.topology.n_parallel == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Table1Config(module_counts=())


class TestRuntimeSweep:
    def test_runtime_sweep_and_summary(self):
        samples = runtime_sweep(
            roof_widths_m=(10.0,), module_counts=(4,), grid_pitch=0.4,
            time_step_minutes=240.0, day_stride=60,
        )
        assert len(samples) == 1
        summary = summarize_runtime(samples)
        assert summary["max_placement_runtime_s"] < summary["paper_budget_s"]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            runtime_sweep(roof_widths_m=(), module_counts=(4,))
        with pytest.raises(ConfigurationError):
            summarize_runtime([])


class TestEndToEndPipeline:
    def test_plan_roof_quickstart(self):
        spec = simple_residential_roof(width_m=8.0, depth_m=5.0, n_obstacles=2, seed=1)
        result = repro.plan_roof(
            spec, n_modules=6, n_series=3,
            time_grid=repro.TimeGrid(step_minutes=120.0, day_stride=30),
        )
        assert result.comparison.baseline.annual_energy_mwh > 0
        assert result.comparison.candidate.annual_energy_mwh > 0
        report = result.report()
        assert "traditional" in report and "proposed" in report
        result.greedy.placement.validate(result.problem.grid)
        result.traditional.placement.validate(result.problem.grid)

    def test_plan_roof_reuses_weather(self, small_weather):
        spec = simple_residential_roof(width_m=8.0, depth_m=5.0, n_obstacles=1, seed=3)
        result = repro.plan_roof(spec, n_modules=4, n_series=2, weather=small_weather)
        assert result.problem.solar.n_time == small_weather.n_samples

    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"
