"""Unit tests for the geometry kernel (points, polygons, rasters, frames)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    AffineTransform2D,
    BoundingBox,
    Point2D,
    Point3D,
    Polygon,
    Raster,
    RasterSpec,
    RoofPlaneFrame,
    union_bounding_box,
)


class TestPoint2D:
    def test_distance(self):
        assert Point2D(0, 0).distance_to(Point2D(3, 4)) == pytest.approx(5.0)

    def test_manhattan_distance(self):
        assert Point2D(1, 1).manhattan_distance_to(Point2D(4, -1)) == pytest.approx(5.0)

    def test_addition_and_subtraction(self):
        assert Point2D(1, 2) + Point2D(3, 4) == Point2D(4, 6)
        assert Point2D(3, 4) - Point2D(1, 2) == Point2D(2, 2)

    def test_scalar_multiplication(self):
        assert 2 * Point2D(1.5, -2.0) == Point2D(3.0, -4.0)

    def test_rotation_quarter_turn(self):
        rotated = Point2D(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_rotation_about_center(self):
        rotated = Point2D(2, 1).rotated(math.pi, about=Point2D(1, 1))
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_dot_and_cross(self):
        assert Point2D(1, 2).dot(Point2D(3, 4)) == pytest.approx(11.0)
        assert Point2D(1, 0).cross(Point2D(0, 1)) == pytest.approx(1.0)

    def test_normalized(self):
        unit = Point2D(3, 4).normalized()
        assert unit.norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Point2D(0, 0).normalized()

    def test_iteration_unpacking(self):
        x, y = Point2D(7, 8)
        assert (x, y) == (7, 8)


class TestPoint3D:
    def test_distance(self):
        assert Point3D(0, 0, 0).distance_to(Point3D(1, 2, 2)) == pytest.approx(3.0)

    def test_cross_product_orthogonality(self):
        a, b = Point3D(1, 0, 0), Point3D(0, 1, 0)
        cross = a.cross(b)
        assert cross.as_tuple() == (0, 0, 1)

    def test_horizontal_projection(self):
        assert Point3D(1, 2, 3).horizontal() == Point2D(1, 2)

    def test_normalized_length(self):
        assert Point3D(2, 3, 6).normalized().norm() == pytest.approx(1.0)


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4 and box.height == 3 and box.area == 12

    def test_contains_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(Point2D(1, 1))
        assert box.contains_point(Point2D(0, 2))
        assert not box.contains_point(Point2D(3, 1))

    def test_intersects(self):
        assert BoundingBox(0, 0, 2, 2).intersects(BoundingBox(1, 1, 3, 3))
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(2, 2, 3, 3))

    def test_expanded(self):
        grown = BoundingBox(0, 0, 1, 1).expanded(0.5)
        assert grown.xmin == -0.5 and grown.xmax == 1.5


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_rectangle_area_and_perimeter(self):
        rect = Polygon.rectangle(0, 0, 4, 3)
        assert rect.area() == pytest.approx(12.0)
        assert rect.perimeter() == pytest.approx(14.0)

    def test_closing_vertex_dropped(self):
        poly = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(poly) == 3

    def test_signed_area_orientation(self):
        ccw = Polygon([(0, 0), (1, 0), (1, 1)])
        assert ccw.is_counter_clockwise()
        assert not ccw.reversed().is_counter_clockwise()

    def test_centroid_of_rectangle(self):
        rect = Polygon.rectangle(0, 0, 2, 4)
        centroid = rect.centroid()
        assert centroid.x == pytest.approx(1.0)
        assert centroid.y == pytest.approx(2.0)

    def test_contains_point(self):
        rect = Polygon.rectangle(0, 0, 2, 2)
        assert rect.contains_point(Point2D(1, 1))
        assert rect.contains_point(Point2D(0, 1))  # boundary
        assert not rect.contains_point(Point2D(3, 1))
        assert not rect.contains_point(Point2D(0, 1), include_boundary=False)

    def test_translation(self):
        rect = Polygon.rectangle(0, 0, 1, 1).translated(5, 5)
        assert rect.contains_point(Point2D(5.5, 5.5))

    def test_scaled_area(self):
        rect = Polygon.rectangle(0, 0, 2, 2).scaled(2.0)
        assert rect.area() == pytest.approx(16.0)

    def test_scaled_invalid_factor(self):
        with pytest.raises(GeometryError):
            Polygon.rectangle(0, 0, 1, 1).scaled(0.0)

    def test_rotation_preserves_area(self):
        rect = Polygon.rectangle(0, 0, 3, 1)
        assert rect.rotated(0.7).area() == pytest.approx(rect.area())

    def test_regular_polygon_vertex_count(self):
        hexagon = Polygon.regular(Point2D(0, 0), 1.0, 6)
        assert len(hexagon) == 6
        assert hexagon.area() == pytest.approx(3 * math.sqrt(3) / 2, rel=1e-6)

    def test_clip_fully_inside(self):
        rect = Polygon.rectangle(1, 1, 2, 2)
        clipped = rect.clip_to_box(BoundingBox(0, 0, 5, 5))
        assert clipped is not None
        assert clipped.area() == pytest.approx(rect.area())

    def test_clip_partial_overlap(self):
        rect = Polygon.rectangle(0, 0, 4, 4)
        clipped = rect.clip_to_box(BoundingBox(2, 2, 6, 6))
        assert clipped is not None
        assert clipped.area() == pytest.approx(4.0)

    def test_clip_disjoint_returns_none(self):
        rect = Polygon.rectangle(0, 0, 1, 1)
        assert rect.clip_to_box(BoundingBox(5, 5, 6, 6)) is None

    def test_rasterize_center_mode(self):
        rect = Polygon.rectangle(0, 0, 1, 1)
        mask = rect.rasterize(Point2D(0, 0), 0.5, 4, 4, mode="center")
        assert mask.sum() == 4
        assert mask[:2, :2].all()

    def test_rasterize_touch_mode_is_superset(self):
        rect = Polygon.rectangle(0.1, 0.1, 0.9, 0.9)
        center = rect.rasterize(Point2D(0, 0), 0.5, 4, 4, mode="center")
        touch = rect.rasterize(Point2D(0, 0), 0.5, 4, 4, mode="touch")
        assert touch.sum() >= center.sum()

    def test_rasterize_invalid_mode(self):
        with pytest.raises(GeometryError):
            Polygon.rectangle(0, 0, 1, 1).rasterize(Point2D(0, 0), 0.5, 2, 2, mode="weird")

    def test_union_bounding_box(self):
        box = union_bounding_box(
            [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(3, 3, 5, 4)]
        )
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (0, 0, 5, 4)

    def test_union_bounding_box_empty(self):
        with pytest.raises(GeometryError):
            union_bounding_box([])


class TestRaster:
    def spec(self) -> RasterSpec:
        return RasterSpec(origin_x=10.0, origin_y=20.0, pitch=0.5, n_rows=4, n_cols=6)

    def test_spec_dimensions(self):
        spec = self.spec()
        assert spec.shape == (4, 6)
        assert spec.width == pytest.approx(3.0)
        assert spec.height == pytest.approx(2.0)

    def test_invalid_spec(self):
        with pytest.raises(GeometryError):
            RasterSpec(0, 0, -1.0, 2, 2)
        with pytest.raises(GeometryError):
            RasterSpec(0, 0, 1.0, 0, 2)

    def test_cell_center_roundtrip(self):
        spec = self.spec()
        center = spec.cell_center(1, 2)
        assert spec.index_of(center) == (1, 2)

    def test_index_outside_raises(self):
        with pytest.raises(GeometryError):
            self.spec().index_of(Point2D(0.0, 0.0))

    def test_data_shape_validation(self):
        with pytest.raises(GeometryError):
            Raster(self.spec(), np.zeros((2, 2)))

    def test_value_and_bilinear_on_constant_field(self):
        raster = Raster(self.spec(), np.full((4, 6), 7.0))
        assert raster.value_at(Point2D(11.0, 21.0)) == 7.0
        assert raster.sample_bilinear(Point2D(11.2, 20.7)) == pytest.approx(7.0)

    def test_bilinear_on_linear_field(self):
        spec = RasterSpec(0, 0, 1.0, 5, 5)
        rows, cols = np.meshgrid(np.arange(5), np.arange(5), indexing="ij")
        raster = Raster(spec, cols.astype(float))
        # The field increases by 1 per metre in x; cell centres are at x+0.5.
        assert raster.sample_bilinear(Point2D(2.5, 2.5)) == pytest.approx(2.0)
        assert raster.sample_bilinear(Point2D(3.0, 2.5)) == pytest.approx(2.5)

    def test_window_extraction(self):
        spec = RasterSpec(0, 0, 1.0, 4, 4)
        raster = Raster(spec, np.arange(16, dtype=float).reshape(4, 4))
        window = raster.window(1, 1, 2, 2)
        assert window.shape == (2, 2)
        assert window.data[0, 0] == 5.0

    def test_window_out_of_bounds(self):
        raster = Raster(self.spec())
        with pytest.raises(GeometryError):
            raster.window(3, 5, 2, 2)

    def test_resampled_preserves_extent(self):
        raster = Raster(self.spec(), np.random.default_rng(0).random((4, 6)))
        coarse = raster.resampled(1.0)
        assert coarse.spec.width >= raster.spec.width - 1e-9

    def test_statistics(self):
        raster = Raster(self.spec(), np.arange(24, dtype=float).reshape(4, 6))
        assert raster.min() == 0.0 and raster.max() == 23.0
        assert raster.mean() == pytest.approx(11.5)
        assert raster.percentile(50) == pytest.approx(11.5)


class TestAffineTransform:
    def test_identity(self):
        point = Point2D(3, -2)
        assert AffineTransform2D.identity().apply(point) == point

    def test_translation(self):
        moved = AffineTransform2D.translation(1, 2).apply(Point2D(0, 0))
        assert moved == Point2D(1, 2)

    def test_rotation(self):
        rotated = AffineTransform2D.rotation(math.pi / 2).apply(Point2D(1, 0))
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_compose_order(self):
        rotate = AffineTransform2D.rotation(math.pi / 2)
        translate = AffineTransform2D.translation(1, 0)
        combined = translate.compose(rotate)  # rotate first, then translate
        result = combined.apply(Point2D(1, 0))
        assert result.x == pytest.approx(1.0)
        assert result.y == pytest.approx(1.0)

    def test_inverse_roundtrip(self):
        transform = AffineTransform2D.rotation(0.3).compose(
            AffineTransform2D.scaling(2.0, 0.5)
        )
        point = Point2D(1.7, -0.4)
        roundtrip = transform.inverse().apply(transform.apply(point))
        assert roundtrip.x == pytest.approx(point.x)
        assert roundtrip.y == pytest.approx(point.y)

    def test_scaling_zero_invalid(self):
        with pytest.raises(GeometryError):
            AffineTransform2D.scaling(0.0)

    def test_singular_inverse_raises(self):
        singular = AffineTransform2D(1, 0, 1, 0, 0, 0)
        with pytest.raises(GeometryError):
            singular.inverse()


class TestRoofPlaneFrame:
    def frame(self, azimuth=0.0, tilt=30.0) -> RoofPlaneFrame:
        return RoofPlaneFrame(origin=Point3D(0, 0, 5), azimuth_deg=azimuth, tilt_deg=tilt)

    def test_invalid_tilt(self):
        with pytest.raises(GeometryError):
            RoofPlaneFrame(origin=Point3D(0, 0, 0), azimuth_deg=0.0, tilt_deg=95.0)

    def test_normal_is_unit_and_points_up(self):
        normal = self.frame().normal
        assert normal.norm() == pytest.approx(1.0)
        assert normal.z > 0

    def test_south_facing_normal_direction(self):
        normal = self.frame(azimuth=0.0, tilt=30.0).normal
        # South-facing: the horizontal part of the normal points south (-y).
        assert normal.y < 0
        assert abs(normal.x) < 1e-9

    def test_origin_maps_to_origin(self):
        frame = self.frame()
        world = frame.roof_to_world(Point2D(0, 0))
        assert world.as_tuple() == pytest.approx((0.0, 0.0, 5.0))

    def test_u_axis_is_horizontal(self):
        frame = self.frame()
        along_eave = frame.roof_to_world(Point2D(1, 0))
        assert along_eave.z == pytest.approx(5.0)

    def test_v_axis_climbs_the_slope(self):
        frame = self.frame(tilt=30.0)
        up_slope = frame.roof_to_world(Point2D(0, 2))
        assert up_slope.z == pytest.approx(5.0 + 2 * math.sin(math.radians(30)))

    def test_roundtrip_world_roof(self):
        frame = self.frame(azimuth=25.0, tilt=26.0)
        roof_point = Point2D(3.3, 1.7)
        recovered = frame.world_to_roof(frame.roof_to_world(roof_point))
        assert recovered.x == pytest.approx(roof_point.x)
        assert recovered.y == pytest.approx(roof_point.y)

    def test_slope_distance_conversions(self):
        frame = self.frame(tilt=60.0)
        assert frame.slope_distance(1.0) == pytest.approx(2.0)
        assert frame.horizontal_distance(2.0) == pytest.approx(1.0)
        assert frame.elevation_gain(2.0) == pytest.approx(math.sqrt(3))
