"""Property-based tests (hypothesis) on the core data structures and models.

These check the invariants that must hold for *any* input, not just the
hand-picked examples of the unit tests: geometric invariances, physical
bounds of the solar and PV models, and the aggregation laws of the
series/parallel panel model.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import STC_IRRADIANCE
from repro.geometry import BoundingBox, Point2D, Point3D, Polygon, RoofPlaneFrame
from repro.pv import PVArray, SeriesParallelTopology, paper_module_model
from repro.pv.wiring import WiringSpec, string_extra_length
from repro.solar import (
    erbs_diffuse_fraction,
    incidence_cosine,
    relative_air_mass,
    solar_declination,
    solar_elevation_azimuth,
)
from repro.solar.time_series import TimeGrid

finite_coord = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
positive_size = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


class TestGeometryProperties:
    @given(x1=finite_coord, y1=finite_coord, x2=finite_coord, y2=finite_coord)
    def test_distance_symmetry_and_triangle_with_origin(self, x1, y1, x2, y2):
        a, b = Point2D(x1, y1), Point2D(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
        origin = Point2D(0, 0)
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-6

    @given(x=finite_coord, y=finite_coord)
    def test_manhattan_at_least_euclidean(self, x, y):
        a, b = Point2D(0, 0), Point2D(x, y)
        assert a.manhattan_distance_to(b) >= a.distance_to(b) - 1e-9

    @given(
        x=finite_coord, y=finite_coord,
        angle=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    )
    def test_rotation_preserves_norm(self, x, y, angle):
        point = Point2D(x, y)
        assert point.rotated(angle).norm() == pytest.approx(point.norm(), abs=1e-6)

    @given(
        xmin=finite_coord, ymin=finite_coord,
        width=positive_size, height=positive_size,
    )
    def test_rectangle_area_and_centroid(self, xmin, ymin, width, height):
        rect = Polygon.rectangle(xmin, ymin, xmin + width, ymin + height)
        assert rect.area() == pytest.approx(width * height, rel=1e-6, abs=1e-9)
        centroid = rect.centroid()
        assert rect.contains_point(centroid)
        assert rect.perimeter() == pytest.approx(2 * (width + height), rel=1e-6, abs=1e-9)

    @given(
        xmin=finite_coord, ymin=finite_coord,
        width=positive_size, height=positive_size,
        dx=finite_coord, dy=finite_coord,
    )
    def test_translation_preserves_area(self, xmin, ymin, width, height, dx, dy):
        rect = Polygon.rectangle(xmin, ymin, xmin + width, ymin + height)
        assert rect.translated(dx, dy).area() == pytest.approx(rect.area(), rel=1e-6, abs=1e-9)

    @given(
        width=positive_size, height=positive_size,
        clip=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_clipping_never_grows_area(self, width, height, clip):
        rect = Polygon.rectangle(0, 0, width, height)
        clipped = rect.clip_to_box(BoundingBox(0, 0, width * clip, height))
        assert clipped is not None
        assert clipped.area() <= rect.area() + 1e-9
        assert clipped.area() == pytest.approx(width * clip * height, rel=1e-5, abs=1e-9)

    @given(
        azimuth=st.floats(min_value=-180.0, max_value=180.0),
        tilt=st.floats(min_value=0.0, max_value=80.0),
        u=st.floats(min_value=-50.0, max_value=50.0),
        v=st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_roof_frame_roundtrip_and_isometry(self, azimuth, tilt, u, v):
        frame = RoofPlaneFrame(origin=Point3D(1.0, -2.0, 6.0), azimuth_deg=azimuth, tilt_deg=tilt)
        roof_point = Point2D(u, v)
        world = frame.roof_to_world(roof_point)
        recovered = frame.world_to_roof(world)
        assert recovered.x == pytest.approx(u, abs=1e-6)
        assert recovered.y == pytest.approx(v, abs=1e-6)
        # Mapping to world preserves distances (the frame is orthonormal).
        assert world.distance_to(frame.origin) == pytest.approx(roof_point.norm(), abs=1e-6)


class TestSolarProperties:
    @given(day=st.floats(min_value=1.0, max_value=365.0))
    def test_declination_bounded(self, day):
        decl = float(solar_declination(np.array([day]))[0])
        assert -23.6 <= decl <= 23.6

    @given(elevation=st.floats(min_value=0.1, max_value=90.0))
    def test_air_mass_at_least_one(self, elevation):
        mass = float(relative_air_mass(np.array([elevation]))[0])
        assert mass >= 0.99

    @given(kt=st.floats(min_value=0.0, max_value=1.2))
    def test_erbs_fraction_bounded(self, kt):
        kd = float(erbs_diffuse_fraction(np.array([kt]))[0])
        assert 0.0 <= kd <= 1.0

    @given(
        latitude=st.floats(min_value=-66.0, max_value=66.0),
        day=st.floats(min_value=1.0, max_value=365.0),
        hour=st.floats(min_value=0.0, max_value=24.0),
    )
    def test_elevation_bounded_by_colatitude(self, latitude, day, hour):
        elevation, _, decl, _ = solar_elevation_azimuth(
            latitude, np.array([day]), np.array([hour])
        )
        max_elevation = 90.0 - abs(latitude - decl[0]) + 1e-6
        assert elevation[0] <= max_elevation + 0.5
        assert elevation[0] >= -90.0

    @given(
        tilt=st.floats(min_value=0.0, max_value=90.0),
        azimuth=st.floats(min_value=-180.0, max_value=180.0),
        sun_elevation=st.floats(min_value=-20.0, max_value=90.0),
        sun_azimuth=st.floats(min_value=-180.0, max_value=180.0),
    )
    def test_incidence_cosine_bounded(self, tilt, azimuth, sun_elevation, sun_azimuth):
        cos_inc = float(
            incidence_cosine(tilt, azimuth, np.array([sun_elevation]), np.array([sun_azimuth]))[0]
        )
        assert 0.0 <= cos_inc <= 1.0 + 1e-12

    @given(
        step=st.sampled_from([15.0, 30.0, 60.0, 120.0, 240.0]),
        stride=st.integers(min_value=1, max_value=60),
        power=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_energy_integration_scale_invariance(self, step, stride, power):
        grid = TimeGrid(step_minutes=step, day_stride=stride)
        energy = grid.integrate_energy_wh(np.full(grid.n_samples, power))
        assert energy == pytest.approx(power * 8760.0, rel=1e-9)


class TestPVProperties:
    @given(
        irradiance=st.floats(min_value=0.0, max_value=1300.0),
        temperature=st.floats(min_value=-20.0, max_value=60.0),
    )
    def test_module_power_bounds(self, irradiance, temperature):
        model = paper_module_model()
        power = float(model.power(np.array([irradiance]), np.array([temperature]))[0])
        assert power >= 0.0
        # Never exceeds the STC rating by more than the cold-weather margin.
        assert power <= 165.0 * (irradiance / STC_IRRADIANCE) * 1.3 + 1e-9

    @given(
        irradiance=st.floats(min_value=1.0, max_value=1300.0),
        temperature=st.floats(min_value=-20.0, max_value=60.0),
    )
    def test_module_power_consistency(self, irradiance, temperature):
        model = paper_module_model()
        op = model.operating_point(np.array([irradiance]), np.array([temperature]))
        assert float(op.power_w[0]) == pytest.approx(
            float(op.voltage_v[0]) * float(op.current_a[0]), rel=1e-9, abs=1e-9
        )

    @given(
        n_series=st.integers(min_value=1, max_value=6),
        n_parallel=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_panel_power_never_exceeds_module_sum(self, n_series, n_parallel, data):
        topology = SeriesParallelTopology(n_series, n_parallel)
        array = PVArray(topology)
        irradiance = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1200.0),
                    min_size=topology.n_modules,
                    max_size=topology.n_modules,
                )
            )
        )
        panel = float(array.power_from_conditions(irradiance, 20.0))
        ideal = float(array.sum_of_module_powers(irradiance, 20.0))
        assert panel <= ideal + 1e-6
        assert panel >= -1e-9

    @given(
        uniform=st.floats(min_value=10.0, max_value=1200.0),
        n_series=st.integers(min_value=1, max_value=6),
        n_parallel=st.integers(min_value=1, max_value=4),
    )
    def test_uniform_irradiance_has_no_mismatch(self, uniform, n_series, n_parallel):
        array = PVArray(SeriesParallelTopology(n_series, n_parallel))
        irradiance = np.full(n_series * n_parallel, uniform)
        loss = float(array.mismatch_loss_fraction(irradiance, 20.0))
        assert loss == pytest.approx(0.0, abs=1e-9)

    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=2,
            max_size=10,
        )
    )
    def test_wiring_overhead_non_negative_and_monotone_in_connector(self, points):
        positions = [Point2D(x, y) for x, y in points]
        short_connector = string_extra_length(positions, WiringSpec(connector_length_m=0.5))
        long_connector = string_extra_length(positions, WiringSpec(connector_length_m=2.0))
        assert short_connector >= 0.0
        assert long_connector <= short_connector + 1e-9


class TestPlacementProperties:
    @given(
        rows=st.integers(min_value=0, max_value=20),
        cols=st.integers(min_value=0, max_value=40),
        cells_w=st.integers(min_value=1, max_value=8),
        cells_h=st.integers(min_value=1, max_value=8),
    )
    def test_covered_cells_count_matches_footprint(self, rows, cols, cells_w, cells_h):
        from repro.core import ModuleFootprint, ModulePlacement

        placement = ModulePlacement(module_index=0, row=rows, col=cols)
        footprint = ModuleFootprint(cells_w=cells_w, cells_h=cells_h)
        cells = placement.covered_cells(footprint)
        assert cells.shape == (cells_w * cells_h, 2)
        assert len({tuple(c) for c in cells}) == cells_w * cells_h
        assert cells[:, 0].min() == rows and cells[:, 1].min() == cols


class TestServeNormalizationProperties:
    """The serve memo must be representation-insensitive and garbage-proof.

    ``normalize_scenario_document`` round-trips every client document
    through :class:`~repro.scenario.ScenarioSpec`, so semantically
    identical documents -- keys reordered, solver written as a string or a
    dict, defaults spelled out or omitted -- collapse to one
    ``scenario_content_digest`` (one memo entry, one request id).  And no
    garbage document may ever escape as anything but the 400-mapped
    :class:`~repro.serve.BadRequestError`: a public endpoint that 500s on
    bad input is a bug.
    """

    @staticmethod
    def _minimal_document(name, width_m, depth_m, tilt_deg, n_modules, solver):
        return {
            "name": name,
            "roof": {
                "name": f"{name}-roof",
                "width_m": width_m,
                "depth_m": depth_m,
                "tilt_deg": tilt_deg,
                "azimuth_deg": 0.0,
            },
            "n_modules": n_modules,
            "solver": solver,
        }

    @given(
        width_m=st.floats(min_value=3.0, max_value=20.0, allow_nan=False),
        depth_m=st.floats(min_value=3.0, max_value=12.0, allow_nan=False),
        tilt_deg=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        n_modules=st.integers(min_value=1, max_value=6),
        solver=st.sampled_from(["greedy", "traditional"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalent_documents_share_one_digest(
        self, width_m, depth_m, tilt_deg, n_modules, solver
    ):
        from repro.runner import scenario_content_digest
        from repro.serve import normalize_scenario_document

        minimal = self._minimal_document(
            "prop", width_m, depth_m, tilt_deg, n_modules, solver
        )
        # Defaults spelled out: the fully canonical dictionary form.
        explicit = normalize_scenario_document(minimal).to_dict()
        # Keys reordered (JSON object order must never matter).
        reordered = dict(reversed(list(explicit.items())))
        # Solver as string shorthand vs. explicit {"name", "options"} dict.
        shorthand = dict(explicit)
        shorthand["solver"] = solver

        digests = {
            scenario_content_digest(normalize_scenario_document(document))
            for document in (minimal, explicit, reordered, shorthand)
        }
        assert len(digests) == 1

    _json_values = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-10, max_value=10)
        | st.floats(allow_nan=False, allow_infinity=False, width=32)
        | st.text(max_size=8),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=12,
    )

    @given(document=_json_values)
    @settings(max_examples=60, deadline=None)
    def test_garbage_documents_never_500_they_400(self, document):
        from repro.serve import BadRequestError, normalize_scenario_document

        try:
            spec = normalize_scenario_document(document)
        except BadRequestError:
            return  # the 400 path: exactly what the contract demands
        # A randomly valid document is acceptable -- it must round-trip.
        assert spec.to_dict()["name"] == str(document["name"])

    @given(document=_json_values)
    @settings(max_examples=25, deadline=None)
    def test_handle_plan_maps_garbage_to_400_not_500(self, document, tmp_path_factory):
        import json as json_module

        from repro.serve import ServeApp, open_serve_store

        store = open_serve_store(
            tmp_path_factory.mktemp("serve-prop") / "store.sqlite"
        )
        try:
            app = ServeApp(store)
            body = json_module.dumps({"scenario": document}).encode("utf-8")
            status, payload, _ = app.dispatch("POST", "/v1/plan", body)
            assert status in (202, 400)  # never 500
            if status == 400:
                assert "error" in payload
        finally:
            store.close()
