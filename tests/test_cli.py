"""Smoke tests of the ``repro`` command-line front-end."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.scenario import get_scenario


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestListScenarios:
    def test_plain(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "residential-south" in out
        assert "built-in scenarios" in out

    def test_json(self, capsys):
        assert main(["list-scenarios", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) >= 10
        assert {"name", "solver", "n_modules", "description"} <= set(records[0])


class TestRun:
    def test_builtin_scenario(self, capsys, cache_dir, tmp_path):
        output = tmp_path / "result.json"
        code = main(
            ["run", "residential-south", "--cache-dir", cache_dir, "--output", str(output)]
        )
        assert code == 0
        assert "residential-south" in capsys.readouterr().out
        record = json.loads(output.read_text())
        assert record["scenario"] == "residential-south"
        assert record["annual_energy_mwh"] > 0

    def test_scenario_file_with_solver_override(self, capsys, cache_dir, tmp_path):
        path = tmp_path / "custom.json"
        get_scenario("residential-south").save(path)
        code = main(["run", str(path), "--solver", "traditional", "--cache-dir", cache_dir])
        assert code == 0
        assert "solver=traditional" in capsys.readouterr().out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "error:" in capsys.readouterr().err


class TestBatch:
    def test_subset_parallel_with_store(self, capsys, cache_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        code = main(
            [
                "batch",
                "fleet-a-n6",
                "fleet-b-n8",
                "--jobs",
                "2",
                "--cache-dir",
                cache_dir,
                "--results",
                str(results),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 2 scenarios" in out
        lines = [json.loads(line) for line in results.read_text().splitlines() if line]
        assert [record["scenario"] for record in lines] == ["fleet-a-n6", "fleet-b-n8"]

    def test_serial_flag(self, capsys, cache_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        code = main(
            [
                "batch",
                "residential-south",
                "--serial",
                "--cache-dir",
                cache_dir,
                "--results",
                str(results),
            ]
        )
        assert code == 0
        assert "1 worker(s)" in capsys.readouterr().out


class TestCampaign:
    def test_run_status_export_rerun_noop(self, capsys, cache_dir, tmp_path):
        store = str(tmp_path / "campaigns.sqlite")
        exported = tmp_path / "exported.jsonl"
        run_args = [
            "campaign",
            "run",
            "smoke",
            "fleet-a-n6",
            "fleet-b-n8",
            "--store",
            store,
            "--cache-dir",
            cache_dir,
            "--serial",
        ]
        assert main(run_args) == 0
        out = capsys.readouterr().out
        assert "campaign 'smoke': 2/2 done (computed 2, skipped 0" in out

        assert main(["campaign", "status", "smoke", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out and "fleet-a-n6" in out

        assert main(["campaign", "status", "--store", store]) == 0
        assert "smoke" in capsys.readouterr().out

        code = main(
            ["campaign", "export", "smoke", "--store", store, "--results", str(exported)]
        )
        assert code == 0
        records = [json.loads(line) for line in exported.read_text().splitlines()]
        assert [record["scenario"] for record in records] == ["fleet-a-n6", "fleet-b-n8"]

        # Re-running the identical campaign is a pure no-op resume.
        assert main(run_args) == 0
        assert "computed 0, skipped 2" in capsys.readouterr().out

    def test_resume_from_store_alone(self, capsys, cache_dir, tmp_path):
        store = str(tmp_path / "campaigns.sqlite")
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "resumable",
                    "residential-south",
                    "--store",
                    store,
                    "--cache-dir",
                    cache_dir,
                    "--serial",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Resume needs no scenario arguments: the specs live in the store.
        assert (
            main(
                [
                    "campaign",
                    "resume",
                    "resumable",
                    "--store",
                    store,
                    "--cache-dir",
                    cache_dir,
                    "--serial",
                ]
            )
            == 0
        )
        assert "computed 0, skipped 1" in capsys.readouterr().out

    def test_status_json_and_unknown_campaign(self, capsys, tmp_path):
        store = str(tmp_path / "campaigns.sqlite")
        assert main(["campaign", "status", "nope", "--store", store]) == 2
        assert "no campaign" in capsys.readouterr().err
        assert main(["campaign", "export", "nope", "--store", store, "--results", "x"]) == 2
        capsys.readouterr()

    def test_store_none_rejected_for_campaigns(self, capsys, tmp_path):
        code = main(["campaign", "run", "c", "residential-south", "--store", "none"])
        assert code == 2
        assert "--store cannot be 'none'" in capsys.readouterr().err

    def test_sweep_uses_store_and_resumes(self, capsys, cache_dir, tmp_path):
        store = str(tmp_path / "campaigns.sqlite")
        args = [
            "sweep",
            "--base",
            "residential-south",
            "--axis",
            "n_modules=3,6",
            "--serial",
            "--cache-dir",
            cache_dir,
            "--store",
            store,
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "computed 2, skipped 0" in captured.err
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "computed 0, skipped 2" in captured.err
        # The in-memory escape hatch still works.
        assert main(args[:-1] + ["none"]) == 0
        assert "campaign" not in capsys.readouterr().err


class TestCompare:
    def test_two_solvers(self, capsys, cache_dir):
        code = main(
            [
                "compare",
                "residential-south",
                "--solvers",
                "greedy,traditional",
                "--cache-dir",
                cache_dir,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "traditional" in out and "vs best" in out


class TestModuleEntryPoint:
    def test_python_dash_m(self, tmp_path):
        """``python -m repro`` resolves to the CLI."""
        src = str(Path(__file__).resolve().parents[1] / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list-scenarios"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0
        assert "residential-south" in completed.stdout
