"""Smoke tests of the ``repro`` command-line front-end."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.scenario import get_scenario


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestListScenarios:
    def test_plain(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "residential-south" in out
        assert "built-in scenarios" in out

    def test_json(self, capsys):
        assert main(["list-scenarios", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) >= 10
        assert {"name", "solver", "n_modules", "description"} <= set(records[0])


class TestRun:
    def test_builtin_scenario(self, capsys, cache_dir, tmp_path):
        output = tmp_path / "result.json"
        code = main(
            ["run", "residential-south", "--cache-dir", cache_dir, "--output", str(output)]
        )
        assert code == 0
        assert "residential-south" in capsys.readouterr().out
        record = json.loads(output.read_text())
        assert record["scenario"] == "residential-south"
        assert record["annual_energy_mwh"] > 0

    def test_scenario_file_with_solver_override(self, capsys, cache_dir, tmp_path):
        path = tmp_path / "custom.json"
        get_scenario("residential-south").save(path)
        code = main(["run", str(path), "--solver", "traditional", "--cache-dir", cache_dir])
        assert code == 0
        assert "solver=traditional" in capsys.readouterr().out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "error:" in capsys.readouterr().err


class TestBatch:
    def test_subset_parallel_with_store(self, capsys, cache_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        code = main(
            [
                "batch",
                "fleet-a-n6",
                "fleet-b-n8",
                "--jobs",
                "2",
                "--cache-dir",
                cache_dir,
                "--results",
                str(results),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 2 scenarios" in out
        lines = [json.loads(line) for line in results.read_text().splitlines() if line]
        assert [record["scenario"] for record in lines] == ["fleet-a-n6", "fleet-b-n8"]

    def test_serial_flag(self, capsys, cache_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        code = main(
            [
                "batch",
                "residential-south",
                "--serial",
                "--cache-dir",
                cache_dir,
                "--results",
                str(results),
            ]
        )
        assert code == 0
        assert "1 worker(s)" in capsys.readouterr().out


class TestCompare:
    def test_two_solvers(self, capsys, cache_dir):
        code = main(
            [
                "compare",
                "residential-south",
                "--solvers",
                "greedy,traditional",
                "--cache-dir",
                cache_dir,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "traditional" in out and "vs best" in out


class TestModuleEntryPoint:
    def test_python_dash_m(self, tmp_path):
        """``python -m repro`` resolves to the CLI."""
        src = str(Path(__file__).resolve().parents[1] / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list-scenarios"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0
        assert "residential-south" in completed.stdout
