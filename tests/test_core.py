"""Unit and integration tests for the floorplanning core (placement data
structures, suitability, constraints, greedy / traditional / ILP / exhaustive
placers, energy evaluation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistanceThreshold,
    FloorplanProblem,
    GreedyConfig,
    ILPConfig,
    ModuleFootprint,
    ModulePlacement,
    Placement,
    SuitabilityConfig,
    TraditionalConfig,
    compare_placements,
    compute_suitability,
    default_topology,
    evaluate_placement,
    exhaustive_floorplan,
    feasible_anchor_mask,
    footprint_from_module,
    footprint_suitability,
    greedy_floorplan,
    ilp_floorplan,
    module_irradiance_series,
    traditional_floorplan,
)
from repro.core.exhaustive import ExhaustiveConfig
from repro.errors import InfeasiblePlacementError, PlacementError
from repro.geometry import Point2D
from repro.pv.array import SeriesParallelTopology
from repro.pv.datasheet import PV_MF165EB3


# ---------------------------------------------------------------------------
# Placement data structures
# ---------------------------------------------------------------------------


class TestFootprintAndPlacement:
    def test_footprint_from_module(self):
        footprint = footprint_from_module(1.6, 0.8, 0.2)
        assert (footprint.cells_w, footprint.cells_h) == (8, 4)
        assert footprint.n_cells == 32

    def test_footprint_bad_pitch(self):
        with pytest.raises(PlacementError):
            footprint_from_module(1.6, 0.8, 0.3)

    def test_rotated_footprint(self):
        footprint = ModuleFootprint(cells_w=8, cells_h=4)
        assert footprint.rotated() == ModuleFootprint(cells_w=4, cells_h=8)

    def test_covered_cells(self):
        placement = ModulePlacement(module_index=0, row=2, col=3)
        cells = placement.covered_cells(ModuleFootprint(2, 2))
        assert cells.shape == (4, 2)
        assert {tuple(c) for c in cells} == {(2, 3), (2, 4), (3, 3), (3, 4)}

    def test_center_roof(self):
        placement = ModulePlacement(module_index=0, row=0, col=0)
        center = placement.center_roof(ModuleFootprint(cells_w=8, cells_h=4), 0.2)
        assert center == Point2D(0.8, 0.4)

    def make_placement(self) -> Placement:
        footprint = ModuleFootprint(cells_w=2, cells_h=1)
        modules = (
            ModulePlacement(0, 0, 0),
            ModulePlacement(1, 0, 2),
            ModulePlacement(2, 2, 0),
            ModulePlacement(3, 2, 2),
        )
        return Placement(
            modules=modules,
            footprint=footprint,
            topology=SeriesParallelTopology(2, 2),
            grid_pitch=0.2,
            label="toy",
        )

    def test_placement_maps(self):
        placement = self.make_placement()
        occupancy = placement.occupancy_map((4, 6))
        strings = placement.string_map((4, 6))
        assert occupancy[0, 0] == 0 and occupancy[0, 2] == 1
        assert strings[0, 0] == 0 and strings[2, 0] == 1
        assert occupancy[3, 5] == -1

    def test_string_positions_grouping(self):
        placement = self.make_placement()
        strings = placement.string_positions()
        assert len(strings) == 2
        assert len(strings[0]) == 2

    def test_dispersion_positive(self):
        assert self.make_placement().dispersion_m() > 0

    def test_module_count_topology_mismatch(self):
        with pytest.raises(PlacementError):
            Placement(
                modules=(ModulePlacement(0, 0, 0),),
                footprint=ModuleFootprint(1, 1),
                topology=SeriesParallelTopology(2, 1),
                grid_pitch=0.2,
            )

    def test_duplicate_module_indices_rejected(self):
        with pytest.raises(PlacementError):
            Placement(
                modules=(ModulePlacement(0, 0, 0), ModulePlacement(0, 1, 1)),
                footprint=ModuleFootprint(1, 1),
                topology=SeriesParallelTopology(2, 1),
                grid_pitch=0.2,
            )

    def test_validate_against_grid(self, small_grid):
        footprint = ModuleFootprint(cells_w=2, cells_h=1)
        good = Placement(
            modules=(ModulePlacement(0, 5, 5),),
            footprint=footprint,
            topology=SeriesParallelTopology(1, 1),
            grid_pitch=small_grid.pitch,
        )
        good.validate(small_grid)
        out_of_bounds = Placement(
            modules=(ModulePlacement(0, small_grid.n_rows - 1, small_grid.n_cols - 1),),
            footprint=footprint,
            topology=SeriesParallelTopology(1, 1),
            grid_pitch=small_grid.pitch,
        )
        with pytest.raises(PlacementError):
            out_of_bounds.validate(small_grid)

    def test_validate_detects_overlap(self, small_grid):
        footprint = ModuleFootprint(cells_w=2, cells_h=2)
        overlapping = Placement(
            modules=(ModulePlacement(0, 5, 5), ModulePlacement(1, 5, 6)),
            footprint=footprint,
            topology=SeriesParallelTopology(2, 1),
            grid_pitch=small_grid.pitch,
        )
        with pytest.raises(PlacementError):
            overlapping.validate(small_grid)


# ---------------------------------------------------------------------------
# Problem definition
# ---------------------------------------------------------------------------


class TestProblem:
    def test_describe(self, small_problem):
        description = small_problem.describe()
        assert description["n_modules"] == 6
        assert description["topology"] == "3s x 2p"

    def test_footprint_derived_from_datasheet(self, small_problem):
        assert small_problem.footprint.cells_w == 8
        assert small_problem.footprint.cells_h == 4

    def test_nameplate(self, small_problem):
        assert small_problem.nameplate_power_w == pytest.approx(6 * 165.0)

    def test_topology_mismatch_rejected(self, small_grid, small_solar):
        with pytest.raises(PlacementError):
            FloorplanProblem(
                grid=small_grid,
                solar=small_solar,
                n_modules=6,
                topology=SeriesParallelTopology(4, 2),
            )

    def test_too_many_modules_rejected(self, small_grid, small_solar):
        with pytest.raises(InfeasiblePlacementError):
            FloorplanProblem(
                grid=small_grid,
                solar=small_solar,
                n_modules=200,
                topology=default_topology(200, 8),
            )

    def test_default_topology(self):
        assert default_topology(32, 8).n_parallel == 4
        assert default_topology(5, 8).n_series == 5
        with pytest.raises(Exception):
            default_topology(0)


# ---------------------------------------------------------------------------
# Suitability metric
# ---------------------------------------------------------------------------


class TestSuitability:
    def test_map_covers_valid_cells_only(self, small_solar, small_grid):
        suitability = compute_suitability(small_solar)
        finite = np.isfinite(suitability.values)
        assert finite.sum() == small_grid.n_valid

    def test_percentile_tracks_irradiance(self, small_solar):
        suitability = compute_suitability(
            small_solar, SuitabilityConfig(use_temperature_correction=False)
        )
        p75 = small_solar.percentile_map(75)
        valid = np.isfinite(p75)
        assert np.allclose(suitability.values[valid], p75[valid], rtol=1e-6)

    def test_temperature_correction_factor_is_applied(self, small_solar):
        with_correction = compute_suitability(small_solar, SuitabilityConfig())
        without = compute_suitability(
            small_solar, SuitabilityConfig(use_temperature_correction=False)
        )
        valid = np.isfinite(with_correction.values)
        # The corrected metric equals the raw percentile times f(T), and the
        # factor stays within a physically sensible band around 1.
        reconstructed = without.values[valid] * with_correction.temperature_factor[valid]
        assert np.allclose(with_correction.values[valid], reconstructed, rtol=1e-9)
        assert np.all(with_correction.temperature_factor[valid] > 0.6)
        assert np.all(with_correction.temperature_factor[valid] < 1.3)
        assert not np.allclose(
            with_correction.temperature_factor[valid], 1.0
        ), "the correction should actually modify the metric"

    def test_mean_statistic_lower_than_percentile(self, small_solar):
        percentile = compute_suitability(small_solar, SuitabilityConfig(statistic="percentile"))
        mean = compute_suitability(small_solar, SuitabilityConfig(statistic="mean"))
        valid = np.isfinite(percentile.values)
        assert np.mean(mean.values[valid]) < np.mean(percentile.values[valid])

    def test_ranked_cells_sorted(self, small_solar):
        suitability = compute_suitability(small_solar)
        ranked = suitability.ranked_cells()
        values = suitability.values[ranked[:, 0], ranked[:, 1]]
        assert np.all(np.diff(values) <= 1e-9)

    def test_normalised_range(self, small_solar):
        suitability = compute_suitability(small_solar)
        normalised = suitability.normalised()
        finite = normalised[np.isfinite(normalised)]
        assert float(finite.min()) == pytest.approx(0.0)
        assert float(finite.max()) == pytest.approx(1.0)

    def test_footprint_suitability_nan_on_invalid(self, small_solar):
        suitability = compute_suitability(small_solar)
        # A footprint larger than the grid is invalid.
        value = footprint_suitability(suitability, 0, 0, 10_000, 10_000)
        assert np.isnan(value)

    def test_invalid_config(self):
        with pytest.raises(PlacementError):
            SuitabilityConfig(percentile=0.0)
        with pytest.raises(PlacementError):
            SuitabilityConfig(statistic="median")


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


class TestConstraints:
    def test_feasible_anchor_mask_counts(self):
        valid = np.ones((4, 6), dtype=bool)
        occupied = np.zeros_like(valid)
        mask = feasible_anchor_mask(valid, occupied, ModuleFootprint(cells_w=2, cells_h=2))
        assert mask.sum() == 3 * 5

    def test_feasible_anchor_mask_respects_holes(self):
        valid = np.ones((4, 4), dtype=bool)
        valid[1, 1] = False
        mask = feasible_anchor_mask(
            valid, np.zeros_like(valid), ModuleFootprint(cells_w=2, cells_h=2)
        )
        assert not mask[0, 0] and not mask[1, 1]
        assert mask[2, 2]

    def test_distance_threshold_floor(self):
        threshold = DistanceThreshold(factor=2.0, min_radius_m=5.0)
        compact = [Point2D(0, 0), Point2D(0.5, 0.0)]
        assert threshold.threshold_for(compact) == 5.0
        assert threshold.accepts(Point2D(3.0, 0.0), compact)
        assert not threshold.accepts(Point2D(30.0, 0.0), compact)

    def test_distance_threshold_single_module(self):
        threshold = DistanceThreshold()
        assert threshold.accepts(Point2D(100.0, 100.0), [Point2D(0, 0)])

    def test_distance_threshold_validation(self):
        with pytest.raises(PlacementError):
            DistanceThreshold(factor=0.0)


# ---------------------------------------------------------------------------
# Placement algorithms
# ---------------------------------------------------------------------------


class TestGreedy:
    def test_places_requested_modules_validly(self, small_problem):
        result = greedy_floorplan(small_problem)
        assert result.placement.n_modules == small_problem.n_modules
        result.placement.validate(small_problem.grid)
        assert result.runtime_s >= 0.0

    def test_greedy_prefers_high_suitability_cells(self, small_problem):
        result = greedy_floorplan(small_problem)
        suitability = result.suitability
        covered = result.placement.covered_cells()
        covered_mean = np.nanmean(suitability.values[covered[:, 0], covered[:, 1]])
        overall_mean = np.nanmean(suitability.values)
        assert covered_mean >= overall_mean

    def test_deterministic(self, small_problem):
        first = greedy_floorplan(small_problem)
        second = greedy_floorplan(small_problem)
        assert [
            (m.row, m.col) for m in first.placement
        ] == [(m.row, m.col) for m in second.placement]

    def test_reuses_precomputed_suitability(self, small_problem):
        suitability = compute_suitability(small_problem.solar)
        result = greedy_floorplan(small_problem, suitability=suitability)
        assert result.suitability is suitability

    def test_config_validation(self):
        with pytest.raises(InfeasiblePlacementError):
            GreedyConfig(footprint_aggregate="median")
        with pytest.raises(InfeasiblePlacementError):
            GreedyConfig(tie_tolerance=-1.0)

    def test_without_distance_threshold(self, small_problem):
        result = greedy_floorplan(
            small_problem, config=GreedyConfig(respect_distance_threshold=False)
        )
        result.placement.validate(small_problem.grid)

    def test_anchor_aggregate_variant(self, small_problem):
        result = greedy_floorplan(small_problem, config=GreedyConfig(footprint_aggregate="anchor"))
        result.placement.validate(small_problem.grid)


class TestTraditional:
    def test_places_compact_block(self, small_problem):
        result = traditional_floorplan(small_problem)
        placement = result.placement
        placement.validate(small_problem.grid)
        assert placement.n_modules == small_problem.n_modules
        assert result.strategy in ("full-block", "string-rows", "packed-modules")

    def test_traditional_is_more_compact_than_greedy(self, small_problem):
        traditional = traditional_floorplan(small_problem)
        greedy = greedy_floorplan(small_problem, suitability=traditional.suitability)
        assert traditional.placement.dispersion_m() <= greedy.placement.dispersion_m() + 1e-9

    def test_modules_per_row_config(self, small_problem):
        result = traditional_floorplan(
            small_problem, config=TraditionalConfig(modules_per_row=2)
        )
        result.placement.validate(small_problem.grid)

    def test_config_validation(self):
        with pytest.raises(InfeasiblePlacementError):
            TraditionalConfig(modules_per_row=0)
        with pytest.raises(InfeasiblePlacementError):
            TraditionalConfig(gap_cells=-1)


class TestILPAndExhaustive:
    @pytest.fixture(scope="class")
    def tiny_problem(self, small_grid, small_solar):
        """A 2-module instance small enough for the ILP and exhaustive search."""
        # Shrink the candidate space by invalidating most of the grid.
        mask = np.zeros_like(small_grid.valid_mask)
        mask[2:8, 2:22] = small_grid.valid_mask[2:8, 2:22]
        grid = small_grid.with_mask(mask)
        solar = small_solar.restricted_to(grid)
        return FloorplanProblem(
            grid=grid,
            solar=solar,
            n_modules=2,
            topology=SeriesParallelTopology(2, 1),
            datasheet=PV_MF165EB3,
            label="tiny",
        )

    def test_ilp_places_modules(self, tiny_problem):
        result = ilp_floorplan(tiny_problem, config=ILPConfig(time_limit_s=20.0))
        result.placement.validate(tiny_problem.grid)
        assert result.placement.n_modules == 2
        assert result.objective_value > 0

    def test_ilp_at_least_as_good_as_greedy_on_surrogate(self, tiny_problem):
        suitability = compute_suitability(tiny_problem.solar)
        greedy = greedy_floorplan(tiny_problem, suitability=suitability)
        ilp = ilp_floorplan(
            tiny_problem, suitability=suitability, config=ILPConfig(time_limit_s=20.0)
        )

        def surrogate(placement):
            total = 0.0
            for cells in placement.covered_cells_by_module():
                total += float(np.nanmean(suitability.values[cells[:, 0], cells[:, 1]]))
            return total

        assert surrogate(ilp.placement) >= surrogate(greedy.placement) - 1e-6

    def test_ilp_anchor_limit(self, tiny_problem):
        with pytest.raises(InfeasiblePlacementError):
            ilp_floorplan(tiny_problem, config=ILPConfig(max_anchors=1))

    def test_exhaustive_not_worse_than_greedy(self, tiny_problem):
        exhaustive = exhaustive_floorplan(
            tiny_problem, ExhaustiveConfig(max_combinations=500000)
        )
        greedy = greedy_floorplan(tiny_problem)
        greedy_energy = evaluate_placement(tiny_problem, greedy.placement).annual_energy_wh
        assert exhaustive.best_energy_wh >= greedy_energy - 1e-6
        assert exhaustive.n_combinations_evaluated > 0

    def test_exhaustive_combination_limit(self, small_problem):
        with pytest.raises(InfeasiblePlacementError):
            exhaustive_floorplan(small_problem, ExhaustiveConfig(max_combinations=10))


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class TestEvaluation:
    def test_evaluation_basic_quantities(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        evaluation = evaluate_placement(small_problem, placement)
        assert evaluation.annual_energy_wh > 0
        assert evaluation.gross_energy_wh >= evaluation.annual_energy_wh
        assert 0.0 <= evaluation.capacity_factor < 0.35
        assert evaluation.peak_power_w <= small_problem.nameplate_power_w * 1.2

    def test_wiring_loss_small_fraction(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        evaluation = evaluate_placement(small_problem, placement)
        assert evaluation.wiring_loss_fraction < 0.05

    def test_disable_wiring_loss(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        with_loss = evaluate_placement(small_problem, placement, include_wiring_loss=True)
        without = evaluate_placement(small_problem, placement, include_wiring_loss=False)
        assert without.annual_energy_wh >= with_loss.annual_energy_wh

    def test_power_series_storage(self, small_problem):
        placement = traditional_floorplan(small_problem).placement
        evaluation = evaluate_placement(small_problem, placement, store_power_series=True)
        assert evaluation.power_series_w is not None
        assert evaluation.power_series_w.shape == (small_problem.solar.n_time,)

    def test_module_aggregation_mean_not_below_substring(self, small_problem):
        placement = traditional_floorplan(small_problem).placement
        substring = evaluate_placement(small_problem, placement, module_aggregation="substring-min")
        mean = evaluate_placement(small_problem, placement, module_aggregation="mean")
        assert mean.annual_energy_wh >= substring.annual_energy_wh - 1e-6

    def test_module_irradiance_series_shape(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        series = module_irradiance_series(small_problem, placement)
        assert series.shape == (small_problem.solar.n_time, small_problem.n_modules)
        assert float(series.min()) >= 0.0

    def test_unknown_aggregation_rejected(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        with pytest.raises(PlacementError):
            module_irradiance_series(small_problem, placement, aggregation="median")

    def test_comparison_improvement_sign(self, small_problem):
        traditional = traditional_floorplan(small_problem)
        greedy = greedy_floorplan(small_problem, suitability=traditional.suitability)
        comparison = compare_placements(
            small_problem, traditional.placement, greedy.placement
        )
        assert comparison.improvement_percent == pytest.approx(
            100.0
            * (comparison.candidate.annual_energy_wh - comparison.baseline.annual_energy_wh)
            / comparison.baseline.annual_energy_wh
        )

    def test_summary_round_trip(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        summary = evaluate_placement(small_problem, placement).summary()
        assert {"annual_energy_mwh", "wiring_extra_length_m", "capacity_factor"} <= set(summary)

    def test_invalid_placement_rejected(self, small_problem):
        bad = Placement(
            modules=tuple(
                ModulePlacement(i, 0, i * small_problem.footprint.cells_w) for i in range(6)
            ),
            footprint=small_problem.footprint,
            topology=small_problem.topology,
            grid_pitch=small_problem.grid.pitch,
        )
        # Row 0 lies in the edge setback, so validation must fail.
        with pytest.raises(PlacementError):
            evaluate_placement(small_problem, bad)
