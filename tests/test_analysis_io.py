"""Unit tests for the analysis layer and the I/O formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    MonthlyEnergy,
    Table1Report,
    Table1Row,
    ascii_heatmap,
    capacity_factor,
    downsample_map,
    format_comparison_table,
    map_statistics,
    monthly_energy,
    month_of_day,
    overlap_fraction,
    performance_ratio,
    placement_ascii,
    placement_shape_metrics,
    spatial_variation_coefficient,
    specific_yield_kwh_per_kwp,
    string_uniformity,
)
from repro.core import compute_suitability, greedy_floorplan, traditional_floorplan
from repro.errors import IOFormatError, ReproError
from repro.io import (
    load_placement,
    load_report,
    placement_from_dict,
    placement_to_dict,
    read_asc,
    read_weather_csv,
    save_placement,
    save_report,
    write_asc,
    write_weather_csv,
)


class TestEnergyAnalysis:
    def test_month_of_day(self):
        months = month_of_day(np.array([1.0, 31.0, 32.0, 365.0]))
        assert months.tolist() == [0, 0, 1, 11]

    def test_monthly_energy_sums_to_total(self, small_time_grid):
        power = np.full(small_time_grid.n_samples, 50.0)
        breakdown = monthly_energy(small_time_grid, power)
        assert breakdown.total_wh == pytest.approx(
            small_time_grid.integrate_energy_wh(power), rel=1e-9
        )
        assert len(breakdown.as_dict()) == 12

    def test_monthly_energy_length_check(self, small_time_grid):
        with pytest.raises(ReproError):
            monthly_energy(small_time_grid, np.zeros(3))

    def test_monthly_energy_validation(self):
        with pytest.raises(ReproError):
            MonthlyEnergy(monthly_wh=np.zeros(5))

    def test_specific_yield(self):
        assert specific_yield_kwh_per_kwp(1_200_000.0, 1000.0) == pytest.approx(1200.0)
        with pytest.raises(ReproError):
            specific_yield_kwh_per_kwp(1.0, 0.0)

    def test_performance_ratio(self):
        ratio = performance_ratio(1_000_000.0, 1000.0, 1400.0)
        assert 0.5 < ratio < 1.0

    def test_capacity_factor(self):
        assert capacity_factor(876_000.0, 1000.0) == pytest.approx(0.1)


class TestMaps:
    def make_map(self):
        values = np.linspace(0, 1, 200).reshape(10, 20)
        values[0, 0] = np.nan
        return values

    def test_downsample_shape(self):
        reduced = downsample_map(self.make_map(), max_rows=5, max_cols=10)
        assert reduced.shape[0] <= 5 and reduced.shape[1] <= 10

    def test_ascii_heatmap_lines(self):
        art = ascii_heatmap(self.make_map(), max_rows=5, max_cols=10)
        lines = art.splitlines()
        assert 1 <= len(lines) <= 5
        assert all(len(line) <= 10 for line in lines)

    def test_map_statistics(self):
        stats = map_statistics(self.make_map())
        assert stats["min"] >= 0.0 and stats["max"] <= 1.0
        assert stats["p25"] <= stats["p50"] <= stats["p75"]

    def test_map_statistics_empty(self):
        with pytest.raises(ReproError):
            map_statistics(np.full((3, 3), np.nan))

    def test_variation_coefficient(self):
        uniform = np.ones((5, 5))
        assert spatial_variation_coefficient(uniform) == pytest.approx(0.0)
        assert spatial_variation_coefficient(self.make_map()) > 0.0

    def test_placement_ascii(self, small_problem):
        placement = traditional_floorplan(small_problem).placement
        art = placement_ascii(placement, small_problem.grid.shape)
        assert "A" in art


class TestPlacementMetrics:
    def test_shape_metrics(self, small_problem):
        traditional = traditional_floorplan(small_problem)
        metrics = placement_shape_metrics(traditional.placement, traditional.suitability)
        assert metrics.covered_area_m2 == pytest.approx(
            small_problem.n_modules * 1.6 * 0.8, rel=1e-6
        )
        assert 0.0 < metrics.packing_density <= 1.0
        assert metrics.min_footprint_suitability <= metrics.mean_footprint_suitability

    def test_string_uniformity_bounds(self, small_problem):
        greedy = greedy_floorplan(small_problem)
        uniformity = string_uniformity(greedy.placement, greedy.suitability)
        assert 0.0 < uniformity.worst_ratio <= 1.0 + 1e-9
        assert len(uniformity.per_string_min_over_mean) == small_problem.topology.n_parallel

    def test_greedy_strings_at_least_as_uniform(self, small_problem):
        suitability = compute_suitability(small_problem.solar)
        traditional = traditional_floorplan(small_problem, suitability=suitability)
        greedy = greedy_floorplan(small_problem, suitability=suitability)
        uniform_greedy = string_uniformity(greedy.placement, suitability)
        uniform_traditional = string_uniformity(traditional.placement, suitability)
        assert uniform_greedy.mean_ratio >= uniform_traditional.mean_ratio - 0.05

    def test_overlap_fraction(self, small_problem):
        traditional = traditional_floorplan(small_problem)
        self_overlap = overlap_fraction(
            traditional.placement, traditional.placement, small_problem.grid.shape
        )
        assert self_overlap == pytest.approx(1.0)


class TestReports:
    def test_table1_row_improvement(self):
        row = Table1Row("roof1", 287, 51, 9000, 16, traditional_mwh=3.0, proposed_mwh=3.6)
        assert row.improvement_percent == pytest.approx(20.0)
        assert row.as_dict()["WxL"] == "287x51"

    def test_report_render(self):
        report = Table1Report()
        report.add_row(Table1Row("roof1", 287, 51, 9000, 16, 3.0, 3.6))
        report.add_row(Table1Row("roof2", 298, 51, 11000, 32, 6.0, 7.2))
        text = report.render()
        assert "roof1" in text and "20.00%" in text
        assert len(report.as_dicts()) == 2
        assert report.improvements() == pytest.approx([20.0, 20.0])

    def test_report_empty_render(self):
        with pytest.raises(ReproError):
            Table1Report().render()

    def test_format_comparison_table(self):
        text = format_comparison_table(["a", "b"], [[1.0, 2.0], [3.0, 4.0]], ["x", "y"])
        assert "a" in text and "4.000" in text
        with pytest.raises(ReproError):
            format_comparison_table(["a"], [[1.0]], ["x", "y"])


class TestIO:
    def test_asc_roundtrip(self, tmp_path, small_scene):
        path = tmp_path / "dsm.asc"
        write_asc(small_scene.dsm, path)
        loaded = read_asc(path)
        assert loaded.shape == small_scene.dsm.shape
        assert np.allclose(loaded.data, small_scene.dsm.data, atol=1e-3)
        assert loaded.pitch == pytest.approx(small_scene.dsm.pitch)

    def test_asc_malformed_header(self, tmp_path):
        path = tmp_path / "bad.asc"
        path.write_text("ncols 2\nnrows 2\n1 2\n3 4\n")
        with pytest.raises(IOFormatError):
            read_asc(path)

    def test_asc_wrong_cell_count(self, tmp_path):
        path = tmp_path / "bad2.asc"
        path.write_text(
            "ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\nnodata_value -9999\n1 2 3\n"
        )
        with pytest.raises(IOFormatError):
            read_asc(path)

    def test_weather_csv_roundtrip(self, tmp_path, small_weather):
        path = tmp_path / "weather.csv"
        write_weather_csv(small_weather, path)
        loaded = read_weather_csv(path)
        assert loaded.n_samples == small_weather.n_samples
        assert np.allclose(loaded.ghi, small_weather.ghi, atol=1e-2)
        assert loaded.station.name == small_weather.station.name

    def test_weather_csv_with_decomposition(self, tmp_path, small_time_grid):
        from repro.weather import SyntheticWeatherConfig, generate_clearsky_weather

        series = generate_clearsky_weather(small_time_grid, SyntheticWeatherConfig(seed=2))
        path = tmp_path / "clearsky.csv"
        write_weather_csv(series, path)
        loaded = read_weather_csv(path)
        assert loaded.has_decomposition
        assert np.allclose(loaded.dni, series.dni, atol=1e-2)

    def test_weather_csv_malformed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,weather,file\n")
        with pytest.raises(IOFormatError):
            read_weather_csv(path)

    def test_placement_json_roundtrip(self, tmp_path, small_problem):
        placement = greedy_floorplan(small_problem).placement
        path = tmp_path / "placement.json"
        save_placement(placement, path)
        loaded = load_placement(path)
        assert loaded.n_modules == placement.n_modules
        assert [(m.row, m.col) for m in loaded] == [(m.row, m.col) for m in placement]
        assert loaded.topology == placement.topology

    def test_placement_dict_validation(self):
        with pytest.raises(IOFormatError):
            placement_from_dict({"format_version": 99})
        with pytest.raises(IOFormatError):
            placement_from_dict({"format_version": 1})

    def test_placement_dict_roundtrip_in_memory(self, small_problem):
        placement = traditional_floorplan(small_problem).placement
        data = placement_to_dict(placement)
        rebuilt = placement_from_dict(data)
        assert rebuilt.label == placement.label

    def test_report_json_roundtrip(self, tmp_path):
        rows = [{"roof": "roof1", "improvement_percent": 12.3}]
        path = tmp_path / "report.json"
        save_report(rows, path)
        assert load_report(path) == rows

    def test_report_json_must_be_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(IOFormatError):
            load_report(path)

    def test_placement_json_invalid_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{invalid json")
        with pytest.raises(IOFormatError):
            load_placement(path)
