"""Equivalence tests of the vectorised fast paths against their references.

Every optimisation of the evaluation engine ships with its ground truth:

* the horizon-map kernel must reproduce ``compute_horizon_map_reference``
  **bit for bit** (cached stages must stay valid across the change),
* the vectorised :class:`~repro.core.PlacementEvaluator` must agree with the
  original per-module-loop evaluation to within 1e-9 relative,
* the incremental greedy placer must return placements **identical module
  for module** to the full-rebuild reference, on the scenario catalog too,
* the vectorised solar-field accessors and the shadow-fraction map must
  match their loop formulations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FloorplanProblem,
    GreedyConfig,
    ModulePlacement,
    Placement,
    PlacementEvaluator,
    default_topology,
    evaluate_placement,
    evaluate_placement_reference,
    greedy_floorplan,
    greedy_floorplan_reference,
    module_irradiance_series,
    module_irradiance_series_reference,
    traditional_floorplan,
)
from repro.errors import PlacementError, SolarModelError
from repro.geometry import Raster, RasterSpec
from repro.scenario import get_scenario
from repro.solar.shading import (
    compute_horizon_map,
    compute_horizon_map_reference,
    shadow_fraction_map,
)


RELATIVE_TOLERANCE = 1e-9


def _relative_error(new: np.ndarray, ref: np.ndarray) -> float:
    new = np.asarray(new, dtype=float)
    ref = np.asarray(ref, dtype=float)
    return float(np.max(np.abs(new - ref) / np.maximum(np.abs(ref), 1e-12)))


# ---------------------------------------------------------------------------
# Horizon-map kernel
# ---------------------------------------------------------------------------


class TestHorizonMapEquivalence:
    def test_bit_identical_on_roof_dsm(self, small_scene):
        dsm = small_scene.dsm.raster
        reference = compute_horizon_map_reference(dsm, n_sectors=16, max_distance=25.0)
        fast = compute_horizon_map(dsm, n_sectors=16, max_distance=25.0)
        assert np.array_equal(reference.sector_azimuths_deg, fast.sector_azimuths_deg)
        assert np.array_equal(reference.horizon_deg, fast.horizon_deg)
        assert reference.pitch == fast.pitch

    def test_bit_identical_default_parameters(self, small_scene):
        dsm = small_scene.dsm.raster
        reference = compute_horizon_map_reference(dsm)
        fast = compute_horizon_map(dsm)
        assert np.array_equal(reference.horizon_deg, fast.horizon_deg)

    def test_bit_identical_with_substep_marching(self, small_scene):
        dsm = small_scene.dsm.raster
        reference = compute_horizon_map_reference(
            dsm, n_sectors=8, max_distance=6.0, min_step=0.13
        )
        fast = compute_horizon_map(dsm, n_sectors=8, max_distance=6.0, min_step=0.13)
        assert np.array_equal(reference.horizon_deg, fast.horizon_deg)

    def test_bit_identical_on_random_dsm_with_nan_holes(self, rng):
        data = rng.normal(5.0, 1.5, size=(48, 57))
        data[rng.random(data.shape) < 0.05] = np.nan
        raster = Raster(RasterSpec(0.0, 0.0, 0.5, 48, 57), data)
        reference = compute_horizon_map_reference(raster, n_sectors=12, max_distance=15.0)
        fast = compute_horizon_map(raster, n_sectors=12, max_distance=15.0)
        assert np.array_equal(reference.horizon_deg, fast.horizon_deg)

    def test_thread_pool_matches_serial(self, small_scene):
        dsm = small_scene.dsm.raster
        serial = compute_horizon_map(dsm, n_sectors=16, max_distance=25.0, n_workers=1)
        threaded = compute_horizon_map(dsm, n_sectors=16, max_distance=25.0, n_workers=4)
        assert np.array_equal(serial.horizon_deg, threaded.horizon_deg)


class TestShadowFractionEquivalence:
    def test_matches_per_sample_loop(self, small_scene, rng):
        horizon = compute_horizon_map(
            small_scene.dsm.raster, n_sectors=16, max_distance=25.0
        )
        elevation = rng.uniform(-10.0, 60.0, size=300)
        azimuth = rng.uniform(-180.0, 180.0, size=300)
        fast = shadow_fraction_map(horizon, elevation, azimuth)
        up = elevation > 0.0
        reference = np.zeros(horizon.shape, dtype=float)
        for elev, az in zip(elevation[up], azimuth[up]):
            reference += horizon.shadow_mask(float(elev), float(az)).astype(float)
        reference /= float(np.count_nonzero(up))
        assert np.array_equal(reference, fast)

    def test_sun_never_up(self, small_scene):
        horizon = compute_horizon_map(
            small_scene.dsm.raster, n_sectors=16, max_distance=25.0
        )
        result = shadow_fraction_map(horizon, np.array([-5.0, -1.0]), np.array([0.0, 10.0]))
        assert np.all(result == 1.0)


# ---------------------------------------------------------------------------
# Solar-field accessors
# ---------------------------------------------------------------------------


class TestSolarFieldAccessors:
    def test_irradiance_for_cells_matches_column_loop(self, small_solar):
        cells = small_solar.cells[::3]
        fast = small_solar.irradiance_for_cells(cells)
        columns = [small_solar.column_of(int(r), int(c)) for r, c in cells]
        reference = np.asarray(small_solar.to_dense()[:, columns], dtype=float)
        assert fast.dtype == np.float64
        assert fast.shape == (small_solar.n_time, len(columns))
        assert np.array_equal(reference, fast)

    def test_irradiance_for_cells_rejects_invalid_cell(self, small_solar):
        lookup = small_solar.cell_column_lookup
        invalid = np.argwhere(lookup < 0)
        assert invalid.size, "expected at least one invalid grid element"
        cells = np.vstack([small_solar.cells[:2], invalid[:1]])
        with pytest.raises(SolarModelError):
            small_solar.irradiance_for_cells(cells)

    def test_annual_insolation_matches_per_column_integration(self, small_solar):
        fast = small_solar.annual_insolation_map_kwh()
        dense = small_solar.to_dense()
        totals = np.array(
            [
                small_solar.time_grid.integrate_energy_wh(dense[:, k].astype(float))
                for k in range(small_solar.n_cells)
            ]
        )
        reference = np.full(small_solar.grid.shape, np.nan)
        reference[small_solar.cells[:, 0], small_solar.cells[:, 1]] = totals / 1e3
        assert np.array_equal(np.isnan(reference), np.isnan(fast))
        finite = ~np.isnan(reference)
        assert _relative_error(fast[finite], reference[finite]) < RELATIVE_TOLERANCE

    def test_integrate_energy_wh_batched_matches_scalar(self, small_solar):
        time_axis = small_solar.time_axis
        block = np.asarray(small_solar.irradiance[:, :5])
        batched = time_axis.integrate_energy_wh(block)
        assert isinstance(batched, np.ndarray)
        for k in range(block.shape[1]):
            scalar = time_axis.integrate_energy_wh(block[:, k].astype(float))
            assert isinstance(scalar, float)
            assert abs(batched[k] - scalar) <= RELATIVE_TOLERANCE * max(abs(scalar), 1.0)


# ---------------------------------------------------------------------------
# Placement evaluator
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def rotated_problem(small_grid, small_solar) -> FloorplanProblem:
    from repro.pv.datasheet import PV_MF165EB3

    return FloorplanProblem(
        grid=small_grid,
        solar=small_solar,
        n_modules=6,
        topology=default_topology(6, n_series=3),
        datasheet=PV_MF165EB3,
        allow_rotation=True,
        label="rotated-problem",
    )


def _example_placements(problem: FloorplanProblem) -> list:
    return [
        greedy_floorplan(problem).placement,
        traditional_floorplan(problem).placement,
    ]


class TestEvaluatorEquivalence:
    @pytest.mark.parametrize("aggregation", ["substring-min", "mean"])
    def test_module_irradiance_series(self, small_problem, aggregation):
        for placement in _example_placements(small_problem):
            reference = module_irradiance_series_reference(
                small_problem, placement, aggregation=aggregation
            )
            fast = module_irradiance_series(
                small_problem, placement, aggregation=aggregation
            )
            assert fast.shape == reference.shape
            assert _relative_error(fast, reference) < RELATIVE_TOLERANCE

    def test_module_irradiance_series_with_rotation(self, rotated_problem):
        placement = greedy_floorplan(rotated_problem).placement
        assert any(m.rotated for m in placement) or True  # mixed orientations allowed
        reference = module_irradiance_series_reference(rotated_problem, placement)
        fast = module_irradiance_series(rotated_problem, placement)
        assert _relative_error(fast, reference) < RELATIVE_TOLERANCE

    @pytest.mark.parametrize("include_wiring", [True, False])
    def test_evaluation_figures(self, small_problem, include_wiring):
        for placement in _example_placements(small_problem):
            reference = evaluate_placement_reference(
                small_problem, placement, include_wiring_loss=include_wiring
            )
            fast = evaluate_placement(
                small_problem, placement, include_wiring_loss=include_wiring
            )
            for key, ref_value in reference.summary().items():
                new_value = fast.summary()[key]
                if isinstance(ref_value, str):
                    assert new_value == ref_value
                else:
                    assert abs(new_value - ref_value) <= RELATIVE_TOLERANCE * max(
                        abs(ref_value), 1e-9
                    ), key

    def test_power_series_matches(self, small_problem):
        placement = greedy_floorplan(small_problem).placement
        reference = evaluate_placement_reference(
            small_problem, placement, store_power_series=True
        )
        fast = evaluate_placement(small_problem, placement, store_power_series=True)
        assert fast.power_series_w is not None
        assert (
            _relative_error(fast.power_series_w, reference.power_series_w)
            < 1e-7  # absolute powers near zero inflate the relative figure
            or np.allclose(fast.power_series_w, reference.power_series_w, atol=1e-6)
        )

    def test_shared_evaluator_matches_one_shot(self, small_problem):
        placements = _example_placements(small_problem)
        evaluator = PlacementEvaluator(small_problem)
        for placement in placements:
            shared = evaluator.evaluate(placement)
            one_shot = evaluate_placement(small_problem, placement)
            assert shared.summary() == one_shot.summary()

    def test_comparison_through_evaluator(self, small_problem):
        baseline, candidate = (
            traditional_floorplan(small_problem).placement,
            greedy_floorplan(small_problem).placement,
        )
        comparison = PlacementEvaluator(small_problem).compare(baseline, candidate)
        assert comparison.baseline.placement_label == "traditional"
        assert comparison.candidate.placement_label == "greedy"

    def test_validation_errors_preserved(self, small_problem):
        footprint = small_problem.footprint
        overlapping = Placement(
            modules=(
                ModulePlacement(module_index=0, row=5, col=5),
                ModulePlacement(module_index=1, row=5, col=5),
                ModulePlacement(module_index=2, row=5, col=5 + footprint.cells_w),
                ModulePlacement(module_index=3, row=5 + footprint.cells_h, col=5),
                ModulePlacement(
                    module_index=4, row=5 + footprint.cells_h, col=5 + footprint.cells_w
                ),
                ModulePlacement(module_index=5, row=5, col=5 + 2 * footprint.cells_w),
            ),
            footprint=footprint,
            topology=small_problem.topology,
            grid_pitch=small_problem.grid.pitch,
        )
        with pytest.raises(PlacementError, match="overlaps"):
            evaluate_placement(small_problem, overlapping)

        out_of_bounds = Placement(
            modules=tuple(
                ModulePlacement(module_index=i, row=10_000, col=5 + i * footprint.cells_w)
                for i in range(6)
            ),
            footprint=footprint,
            topology=small_problem.topology,
            grid_pitch=small_problem.grid.pitch,
        )
        with pytest.raises(PlacementError, match="bounds"):
            evaluate_placement(small_problem, out_of_bounds)

    def test_generic_model_path(self, small_grid, small_solar):
        """A non-standard thermal model routes through the generic operating
        point (no fused fast path) and still matches the reference."""
        from repro.pv.datasheet import PV_MF165EB3
        from repro.pv.module import EmpiricalModuleModel
        from repro.pv.thermal import NOCTTemperatureModel

        model = EmpiricalModuleModel(
            datasheet=PV_MF165EB3, thermal=NOCTTemperatureModel()
        )
        problem = FloorplanProblem(
            grid=small_grid,
            solar=small_solar,
            n_modules=6,
            topology=default_topology(6, n_series=3),
            datasheet=PV_MF165EB3,
            module_model=model,
            label="noct-problem",
        )
        evaluator = PlacementEvaluator(problem)
        assert not evaluator._fused
        placement = greedy_floorplan(problem).placement
        reference = evaluate_placement_reference(problem, placement)
        fast = evaluator.evaluate(placement)
        assert (
            abs(fast.annual_energy_wh - reference.annual_energy_wh)
            <= RELATIVE_TOLERANCE * abs(reference.annual_energy_wh)
        )

    def test_wrong_module_count_rejected(self, small_problem):
        footprint = small_problem.footprint
        placement = Placement(
            modules=(ModulePlacement(module_index=0, row=5, col=5),),
            footprint=footprint,
            topology=default_topology(1, n_series=1),
            grid_pitch=small_problem.grid.pitch,
        )
        with pytest.raises(PlacementError, match="number of modules"):
            evaluate_placement(small_problem, placement)

    def test_mismatched_footprint_rejected(self, small_problem):
        """A placement defined on a different module footprint must error
        instead of being silently gathered with the problem's footprint."""
        foreign = small_problem.footprint.rotated()
        placement = Placement(
            modules=tuple(
                ModulePlacement(module_index=i, row=5, col=5 + i * foreign.cells_w)
                for i in range(6)
            ),
            footprint=foreign,
            topology=small_problem.topology,
            grid_pitch=small_problem.grid.pitch,
        )
        with pytest.raises(PlacementError, match="footprint"):
            module_irradiance_series(small_problem, placement)

    def test_partial_placement_series_allowed(self, small_problem):
        """module_irradiance_series still works on partial placements (the
        reference behaviour); only evaluate() requires the problem's N."""
        footprint = small_problem.footprint
        placement = Placement(
            modules=(ModulePlacement(module_index=0, row=5, col=5),),
            footprint=footprint,
            topology=default_topology(1, n_series=1),
            grid_pitch=small_problem.grid.pitch,
        )
        series = module_irradiance_series(small_problem, placement)
        reference = module_irradiance_series_reference(small_problem, placement)
        assert series.shape == (small_problem.solar.n_time, 1)
        assert _relative_error(series, reference) < RELATIVE_TOLERANCE


# ---------------------------------------------------------------------------
# Incremental greedy
# ---------------------------------------------------------------------------


def _module_tuples(placement: Placement) -> list:
    return [(m.module_index, m.row, m.col, m.rotated) for m in placement]


class TestIncrementalGreedyEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            None,
            GreedyConfig(footprint_aggregate="anchor"),
            GreedyConfig(respect_distance_threshold=False),
            GreedyConfig(tie_tolerance=0.05),
        ],
    )
    def test_identical_on_small_problem(self, small_problem, config):
        reference = greedy_floorplan_reference(small_problem, config=config)
        fast = greedy_floorplan(small_problem, config=config)
        assert _module_tuples(reference.placement) == _module_tuples(fast.placement)
        assert reference.relaxed_threshold_count == fast.relaxed_threshold_count

    def test_identical_with_rotation(self, rotated_problem):
        reference = greedy_floorplan_reference(rotated_problem)
        fast = greedy_floorplan(rotated_problem)
        assert _module_tuples(reference.placement) == _module_tuples(fast.placement)

    @pytest.mark.parametrize(
        "scenario_name", ["residential-south", "industrial-pipes", "heavy-shading"]
    )
    def test_identical_on_catalog_scenarios(self, scenario_name):
        problem = _catalog_problem(scenario_name)
        reference = greedy_floorplan_reference(problem)
        fast = greedy_floorplan(problem)
        assert _module_tuples(reference.placement) == _module_tuples(fast.placement)
        assert reference.relaxed_threshold_count == fast.relaxed_threshold_count


def _catalog_problem(name: str) -> FloorplanProblem:
    """Assemble the floorplanning problem of a catalog scenario (no cache)."""
    from repro.gis import make_roof_grid, suitable_grid_for_scene, build_roof_scene
    from repro.solar import compute_roof_solar_field

    spec = get_scenario(name)
    scene = build_roof_scene(spec.roof, dsm_pitch=spec.dsm_pitch)
    grid = suitable_grid_for_scene(scene, make_roof_grid(scene, pitch=spec.grid_pitch))
    time_grid = spec.time.build()
    weather = spec.weather.build(time_grid)
    solar = compute_roof_solar_field(scene, grid, weather, spec.solar.build())
    return FloorplanProblem(
        grid=solar.grid,
        solar=solar,
        n_modules=spec.n_modules,
        topology=default_topology(spec.n_modules, spec.series_length()),
        datasheet=spec.datasheet(),
        allow_rotation=spec.allow_rotation,
        label=spec.name,
    )
