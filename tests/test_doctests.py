"""Doctest suite of the audited public API surface.

The documentation satellite of the sweep-engine PR requires every public
entry point of the headline API -- ``plan_roof``, ``PlacementEvaluator``,
``ScenarioSpec``, ``StageCache``, ``run_batch`` -- to carry an
example-bearing docstring.  This module executes those examples (plus the
sweep-engine ones) with ``doctest``, so the snippets users copy from the
docstrings are guaranteed to run and to print what they claim.

Equivalent to running ``pytest --doctest-modules`` on the listed modules,
expressed as a normal test so the tier-1 invocation picks it up without
extra flags.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.core.evaluation
import repro.runner.batch
import repro.runner.cache
import repro.runner.store
import repro.scenario.spec
import repro.sweep.grid
import repro.sweep.report

#: module -> docstrings expected to carry at least one example.
AUDITED_MODULES = {
    repro: ["plan_roof"],
    repro.core.evaluation: ["PlacementEvaluator"],
    repro.runner.batch: ["run_batch"],
    repro.runner.cache: ["StageCache"],
    repro.runner.store: ["ResultStore"],
    repro.scenario.spec: ["ScenarioSpec", "ScenarioSpec.with_overrides"],
    repro.sweep.grid: ["SweepPlan"],
    repro.sweep.report: ["render_markdown_table"],
}


@pytest.mark.parametrize(
    "module", list(AUDITED_MODULES), ids=lambda m: m.__name__
)
def test_module_doctests_pass(module):
    """Every doctest in the audited module runs and passes."""
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


@pytest.mark.parametrize(
    "module,names",
    [(module, names) for module, names in AUDITED_MODULES.items()],
    ids=lambda value: value.__name__ if hasattr(value, "__name__") else "names",
)
def test_audited_entry_points_have_examples(module, names):
    """The audited entry points carry example-bearing docstrings."""
    finder = doctest.DocTestFinder(exclude_empty=True)
    documented = {
        case.name.removeprefix(module.__name__ + ".")
        for case in finder.find(module)
        if case.examples
    }
    for name in names:
        assert name in documented, (
            f"{module.__name__}.{name} has no doctest example"
        )
