"""Tests of the daylight-compressed solar field and zero-copy transport.

Covers the PR-3 contract end to end:

* the compressed field expands bit-for-bit to the kept dense reference and
  every consumer (energy integration, aggregate maps, suitability, greedy /
  traditional placements, the evaluator) agrees with the dense flow;
* the degenerate axes (polar night / all-dark series, ``n_daylight == 0``)
  flow through without special-casing;
* the stage cache round-trips the irradiance block through a raw ``.npy``
  sidecar that warm readers memory-map read-only, with clean invalidation
  of pre-version entries and corrupt sidecars;
* the batch runner ships kilobyte-sized cache-key payloads (never an
  irradiance array) and its completion-streamed execution preserves input
  order;
* the polar-safe azimuth formula (the ``cos_az`` guard fix).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import FloorplanProblem, PlacementEvaluator, default_topology
from repro.core.greedy import greedy_floorplan
from repro.core.suitability import compute_suitability
from repro.core.traditional import traditional_floorplan
from repro.errors import SolarModelError
from repro.pv.datasheet import PV_MF165EB3
from repro.runner import StageCache, run_batch
from repro.runner.batch import _worker_payload
from repro.runner.stages import cached_solar_field
from repro.scenario import builtin_scenarios
from repro.solar import (
    CompressedTimeGrid,
    SolarSimulationConfig,
    TimeGrid,
    compute_roof_solar_field,
    compute_roof_solar_field_dense_reference,
    solar_elevation_azimuth,
)
from repro.weather.records import StationMetadata, WeatherSeries


@pytest.fixture(scope="module")
def dense_reference(small_scene, small_grid, small_weather):
    """The kept dense assembly of the small roof (the ground truth)."""
    config = SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=25.0)
    return compute_roof_solar_field_dense_reference(
        small_scene, small_grid, small_weather, config
    )


def _modules(placement):
    return [(m.module_index, m.row, m.col, m.rotated) for m in placement.modules]


def _problem(grid, solar, n_modules=6, n_series=3):
    return FloorplanProblem(
        grid=grid,
        solar=solar,
        n_modules=n_modules,
        topology=default_topology(n_modules, n_series=n_series),
        datasheet=PV_MF165EB3,
        label="equivalence",
    )


# ---------------------------------------------------------------------------
# CompressedTimeGrid
# ---------------------------------------------------------------------------


class TestCompressedTimeGrid:
    def test_round_trip_is_exact(self):
        grid = TimeGrid(step_minutes=120.0, day_stride=30)
        keep = np.zeros(grid.n_samples, dtype=bool)
        keep[::3] = True
        axis = CompressedTimeGrid.from_mask(grid, keep)
        assert axis.n_daylight == int(np.count_nonzero(keep))
        assert axis.n_full == grid.n_samples
        values = np.arange(axis.n_daylight, dtype=float) + 1.0
        dense = axis.expand(values)
        assert dense.shape == (grid.n_samples,)
        assert np.all(dense[~keep] == 0.0)
        assert np.array_equal(axis.compress(dense), values)

    def test_integrate_matches_dense_for_zero_filled_series(self):
        grid = TimeGrid(step_minutes=120.0, day_stride=30)
        keep = np.zeros(grid.n_samples, dtype=bool)
        keep[10:60] = True
        axis = CompressedTimeGrid.from_mask(grid, keep)
        rng = np.random.default_rng(0)
        compressed = rng.uniform(0.0, 900.0, size=(axis.n_daylight, 3))
        dense = axis.expand(compressed)
        fast = axis.integrate_energy_wh(compressed)
        reference = grid.integrate_energy_wh(dense)
        assert np.allclose(fast, reference, rtol=1e-12)

    def test_empty_axis(self):
        grid = TimeGrid(step_minutes=120.0, day_stride=30)
        axis = CompressedTimeGrid.from_mask(grid, np.zeros(grid.n_samples, dtype=bool))
        assert axis.n_daylight == 0
        assert axis.compression_ratio == float("inf")
        assert axis.integrate_energy_wh(np.zeros((0,))) == 0.0
        assert np.array_equal(axis.expand(np.zeros((0, 2))), np.zeros((grid.n_samples, 2)))

    def test_validation(self):
        grid = TimeGrid(step_minutes=120.0, day_stride=30)
        with pytest.raises(SolarModelError):
            CompressedTimeGrid(full=grid, indices=np.array([3, 3]))
        with pytest.raises(SolarModelError):
            CompressedTimeGrid(full=grid, indices=np.array([grid.n_samples]))
        axis = CompressedTimeGrid(full=grid, indices=np.array([0, 5]))
        with pytest.raises(SolarModelError):
            axis.integrate_energy_wh(np.zeros(3))
        with pytest.raises(SolarModelError):
            axis.expand(np.zeros(3))


# ---------------------------------------------------------------------------
# Dense vs compressed equivalence
# ---------------------------------------------------------------------------


class TestDenseEquivalence:
    def test_expansion_is_bit_identical(self, small_solar, dense_reference):
        assert small_solar.is_compressed and not dense_reference.is_compressed
        assert small_solar.n_daylight < small_solar.n_time
        assert np.array_equal(small_solar.to_dense(), dense_reference.irradiance)
        # Every dropped row of the reference is exactly zero.
        mask = np.zeros(small_solar.n_time, dtype=bool)
        mask[small_solar.daylight.indices] = True
        assert np.all(dense_reference.irradiance[~mask] == 0.0)

    def test_aggregate_maps_match(self, small_solar, dense_reference):
        assert np.array_equal(
            np.nan_to_num(small_solar.percentile_map(75)),
            np.nan_to_num(dense_reference.percentile_map(75)),
        )
        for fast, slow in (
            (small_solar.mean_map(), dense_reference.mean_map()),
            (
                small_solar.annual_insolation_map_kwh(),
                dense_reference.annual_insolation_map_kwh(),
            ),
        ):
            finite = np.isfinite(slow)
            assert np.array_equal(finite, np.isfinite(fast))
            assert np.allclose(fast[finite], slow[finite], rtol=1e-9)

    def test_iter_dense_blocks_reassembles_exactly(self, small_solar):
        dense = small_solar.to_dense().astype(np.float64)
        rebuilt = np.empty_like(dense)
        for sl, block in small_solar.iter_dense_blocks(max_columns=7):
            rebuilt[:, sl] = block
        assert np.array_equal(rebuilt, dense)

    def test_suitability_is_bit_identical(self, small_solar, dense_reference):
        for statistic in ("percentile", "mean"):
            from repro.core.suitability import SuitabilityConfig

            cfg = SuitabilityConfig(statistic=statistic)
            fast = compute_suitability(small_solar, cfg)
            slow = compute_suitability(dense_reference, cfg)
            assert np.array_equal(
                np.nan_to_num(fast.values), np.nan_to_num(slow.values)
            )

    def test_placements_identical_module_for_module(
        self, small_grid, small_solar, dense_reference
    ):
        fast_problem = _problem(small_grid, small_solar)
        dense_problem = _problem(small_grid, dense_reference)
        assert _modules(greedy_floorplan(fast_problem).placement) == _modules(
            greedy_floorplan(dense_problem).placement
        )
        assert _modules(traditional_floorplan(fast_problem).placement) == _modules(
            traditional_floorplan(dense_problem).placement
        )

    def test_evaluation_within_1e9_relative(
        self, small_grid, small_solar, dense_reference
    ):
        fast_problem = _problem(small_grid, small_solar)
        dense_problem = _problem(small_grid, dense_reference)
        placement = greedy_floorplan(fast_problem).placement
        fast = PlacementEvaluator(fast_problem).evaluate(
            placement, store_power_series=True
        )
        slow = PlacementEvaluator(dense_problem).evaluate(
            placement, store_power_series=True
        )
        for name in (
            "annual_energy_wh",
            "gross_energy_wh",
            "wiring_loss_wh",
            "mean_mismatch_loss",
            "peak_power_w",
            "capacity_factor",
        ):
            fast_value, slow_value = getattr(fast, name), getattr(slow, name)
            assert fast_value == pytest.approx(slow_value, rel=1e-9, abs=1e-9), name
        assert fast.power_series_w.shape == (small_solar.n_time,)
        assert np.allclose(fast.power_series_w, slow.power_series_w, rtol=1e-9, atol=1e-9)

    def test_restricted_to_preserves_axis(self, small_grid, small_solar):
        mask = np.zeros_like(small_grid.valid_mask)
        mask[2:8, 2:22] = small_grid.valid_mask[2:8, 2:22]
        grid = small_grid.with_mask(mask)
        restricted = small_solar.restricted_to(grid)
        assert restricted.daylight is small_solar.daylight
        assert restricted.n_cells == grid.n_valid
        row, col = restricted.cells[0]
        assert np.array_equal(
            restricted.irradiance_for_cell(int(row), int(col)),
            small_solar.irradiance_for_cell(int(row), int(col)),
        )

    def test_scenario_catalog_fingerprints_match_dense(self, tmp_path, monkeypatch):
        """Catalog scenarios run identically on the compressed field.

        The dense flow is emulated by patching the assembly entry point the
        pipeline uses with the kept dense reference.
        """
        from repro.runner import stages
        from repro.runner.stages import run_scenario

        catalog = builtin_scenarios()
        names = ("residential-south", "high-latitude", "heavy-shading")
        compressed = {
            name: run_scenario(catalog[name], cache=None, use_cache=False).fingerprint()
            for name in names
        }
        monkeypatch.setattr(
            stages, "compute_roof_solar_field", compute_roof_solar_field_dense_reference
        )
        dense = {
            name: run_scenario(catalog[name], cache=None, use_cache=False).fingerprint()
            for name in names
        }
        for name in names:
            comp, ref = dict(compressed[name]), dict(dense[name])
            for key in ("annual_energy_mwh", "baseline_energy_mwh",
                        "improvement_percent", "wiring_extra_length_m"):
                assert comp.pop(key) == pytest.approx(ref.pop(key), rel=1e-9), (name, key)
            # Everything else -- placements included -- must be identical.
            assert comp == ref, name


# ---------------------------------------------------------------------------
# Degenerate axes (polar night / all-dark weather)
# ---------------------------------------------------------------------------


class TestPolarNight:
    @pytest.fixture(scope="class")
    def dark_solar(self, small_scene, small_grid, small_time_grid):
        """An all-dark series: zero GHI everywhere -> n_daylight == 0."""
        n = small_time_grid.n_samples
        weather = WeatherSeries(
            time_grid=small_time_grid,
            ghi=np.zeros(n),
            temperature=np.linspace(-12.0, 4.0, n),
            station=StationMetadata(name="polar", latitude_deg=85.0, longitude_deg=0.0),
        )
        config = SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=25.0)
        return compute_roof_solar_field(small_scene, small_grid, weather, config)

    def test_zero_daylight_axis(self, dark_solar):
        assert dark_solar.n_daylight == 0
        assert dark_solar.irradiance.shape == (0, dark_solar.n_cells)
        assert np.all(dark_solar.to_dense() == 0.0)

    def test_maps_are_zero(self, dark_solar):
        for grid_map in (
            dark_solar.percentile_map(75),
            dark_solar.mean_map(),
            dark_solar.annual_insolation_map_kwh(),
        ):
            finite = np.isfinite(grid_map)
            assert np.count_nonzero(finite) == dark_solar.n_cells
            assert np.all(grid_map[finite] == 0.0)

    def test_pipeline_places_and_scores_zero_energy(self, small_grid, dark_solar):
        problem = _problem(small_grid, dark_solar)
        result = greedy_floorplan(problem)
        assert result.placement.n_modules == problem.n_modules
        evaluation = PlacementEvaluator(problem).evaluate(
            result.placement, store_power_series=True
        )
        assert evaluation.annual_energy_wh == 0.0
        assert evaluation.peak_power_w == 0.0
        assert evaluation.mean_mismatch_loss == 0.0
        assert evaluation.power_series_w.shape == (dark_solar.n_time,)
        assert np.all(evaluation.power_series_w == 0.0)


# ---------------------------------------------------------------------------
# Polar-safe solar azimuth (the cos_az guard fix)
# ---------------------------------------------------------------------------


class TestHighLatitudeAzimuth:
    def test_azimuth_tracks_hour_angle_at_north_pole(self):
        # At the pole the sun circles at constant elevation (= declination);
        # its azimuth in the from-South-positive-West convention equals the
        # hour angle.  The former scalar guard dropped the safe_cos_elev
        # factor exactly at |lat| = 90 and collapsed the azimuth to ~+-90.
        hours = np.arange(0.5, 24.0, 1.0)
        days = np.full_like(hours, 172.0)  # near the June solstice
        elevation, azimuth, declination, hour_angle = solar_elevation_azimuth(
            90.0, days, hours
        )
        assert np.all(elevation > 0)  # polar day
        assert np.allclose(elevation, declination, atol=1e-6)
        assert np.allclose(azimuth, hour_angle, atol=1e-6)

    def test_azimuth_at_south_pole_midsummer(self):
        hours = np.arange(0.5, 24.0, 1.0)
        days = np.full_like(hours, 355.0)  # near the December solstice
        elevation, azimuth, declination, hour_angle = solar_elevation_azimuth(
            -90.0, days, hours
        )
        assert np.all(elevation > 0)
        assert np.allclose(elevation, -declination, atol=1e-6)
        # cos_az flips sign at lat = -90: azimuth = atan2(sin ha, -cos ha).
        ha = np.radians(hour_angle)
        expected = np.degrees(np.arctan2(np.sin(ha), -np.cos(ha)))
        assert np.allclose(azimuth, expected, atol=1e-6)

    def test_mid_latitudes_unchanged_shape(self):
        hours = np.arange(0.5, 24.0, 1.0)
        days = np.full_like(hours, 172.0)
        elevation, azimuth, _, _ = solar_elevation_azimuth(45.0, days, hours)
        up = elevation > 0
        # Sunrise in the east (negative azimuth), sunset in the west.
        assert azimuth[up][0] < -60.0
        assert azimuth[up][-1] > 60.0


# ---------------------------------------------------------------------------
# Memmap sidecar cache round-trip
# ---------------------------------------------------------------------------


class TestMemmapCache:
    def _cached(self, spec, scene, grid, weather, cache):
        config = SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=25.0)
        return cached_solar_field(
            spec, scene, grid, weather, config, 0.4, 0.2, cache
        )

    def test_round_trip_is_memmapped_and_exact(
        self, small_roof_spec, small_scene, small_grid, small_weather, tmp_path
    ):
        cache = StageCache(root=tmp_path / "cache")
        cold, hit_cold = self._cached(
            small_roof_spec, small_scene, small_grid, small_weather, cache
        )
        assert not hit_cold
        sidecars = list((tmp_path / "cache").rglob("*.irradiance.npy"))
        assert len(sidecars) == 1
        warm, hit_warm = self._cached(
            small_roof_spec, small_scene, small_grid, small_weather, cache
        )
        assert hit_warm
        assert isinstance(warm.irradiance, np.memmap)
        assert not warm.irradiance.flags.writeable
        assert np.array_equal(np.asarray(warm.irradiance), cold.irradiance)
        assert np.array_equal(warm.daylight.indices, cold.daylight.indices)
        # The pickled entry itself stays small: the bulk lives in the sidecar.
        entry = next((tmp_path / "cache" / "solar").glob("*.pkl"))
        assert entry.stat().st_size < sidecars[0].stat().st_size

    def test_memmap_knob_disables_mapping(
        self, small_roof_spec, small_scene, small_grid, small_weather, tmp_path
    ):
        cache = StageCache(root=tmp_path / "cache", mmap_arrays=False)
        self._cached(small_roof_spec, small_scene, small_grid, small_weather, cache)
        warm, hit = self._cached(
            small_roof_spec, small_scene, small_grid, small_weather, cache
        )
        assert hit
        assert not isinstance(warm.irradiance, np.memmap)

    def test_missing_sidecar_is_a_miss(
        self, small_roof_spec, small_scene, small_grid, small_weather, tmp_path
    ):
        cache = StageCache(root=tmp_path / "cache")
        self._cached(small_roof_spec, small_scene, small_grid, small_weather, cache)
        for sidecar in (tmp_path / "cache").rglob("*.npy"):
            sidecar.unlink()
        _, hit = self._cached(
            small_roof_spec, small_scene, small_grid, small_weather, cache
        )
        assert not hit

    def test_corrupt_sidecar_is_a_miss(
        self, small_roof_spec, small_scene, small_grid, small_weather, tmp_path
    ):
        cache = StageCache(root=tmp_path / "cache")
        self._cached(small_roof_spec, small_scene, small_grid, small_weather, cache)
        for sidecar in (tmp_path / "cache").rglob("*.npy"):
            sidecar.write_bytes(b"not an npy file")
        _, hit = self._cached(
            small_roof_spec, small_scene, small_grid, small_weather, cache
        )
        assert not hit

    def test_format_version_orphans_old_entries(
        self, small_roof_spec, small_scene, small_grid, small_weather, tmp_path, monkeypatch
    ):
        from repro.runner import cache as cache_module

        cache = StageCache(root=tmp_path / "cache")
        self._cached(small_roof_spec, small_scene, small_grid, small_weather, cache)
        # Entries written under a previous on-disk format hash to different
        # paths, so they can never be read back (no corruption, just a miss).
        monkeypatch.setattr(cache_module, "CACHE_FORMAT_VERSION", 1)
        _, hit = self._cached(
            small_roof_spec, small_scene, small_grid, small_weather, cache
        )
        assert not hit

    def test_clear_removes_sidecars(
        self, small_roof_spec, small_scene, small_grid, small_weather, tmp_path
    ):
        cache = StageCache(root=tmp_path / "cache")
        self._cached(small_roof_spec, small_scene, small_grid, small_weather, cache)
        assert list((tmp_path / "cache").rglob("*.npy"))
        removed = cache.clear()
        assert removed == cache.stats.writes
        assert not list((tmp_path / "cache").rglob("*.npy"))


# ---------------------------------------------------------------------------
# Zero-copy batch transport
# ---------------------------------------------------------------------------


class TestBatchTransport:
    def test_worker_payload_is_kilobytes_not_arrays(self):
        # The biggest catalog roof: its solar field is tens of MB, but the
        # submitted work unit carries only the declarative spec + cache key
        # material.
        spec = builtin_scenarios()["industrial-pipes"]
        payload = _worker_payload(spec, "/tmp/some-cache-dir", True, mmap_arrays=False)
        size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        assert size < 50_000, f"worker payload unexpectedly large: {size} bytes"
        # The parent cache's memmap opt-out travels with the work unit.
        assert payload[3] is False

    def test_streamed_completion_preserves_input_order(self, tmp_path):
        catalog = builtin_scenarios()
        names = [
            "fleet-c-baseline",
            "residential-south",
            "fleet-a-n6",
            "fleet-b-n8",
            "residential-compact",
        ]
        specs = [catalog[name] for name in names]
        # 5 scenarios with 2 workers and 2-deep in-flight chunks exercises
        # the submit-as-completed refill loop.
        batch = run_batch(specs, cache=tmp_path / "cache", jobs=2)
        assert [result.scenario for result in batch.results] == names
        serial = run_batch(specs, cache=tmp_path / "cache-serial", parallel=False)
        assert [r.fingerprint() for r in batch.results] == [
            r.fingerprint() for r in serial.results
        ]
