"""Unit tests of the fault-injection switchboard (:mod:`repro.faults`).

The chaos campaigns in ``test_chaos.py`` prove the *recovery* machinery;
these tests pin the injector semantics themselves: the ``REPRO_FAULTS``
spec grammar, per-clause counters (``times``/``after``/``match``/``p``),
atomic cross-process firing claims, environment (re)configuration, and the
action of each fault site.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.faults import InjectedFault, configure, configure_from_env, fire, parse_plan
from repro.runner.batch import retry_backoff_delay


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------


class TestParsePlan:
    def test_empty_spec_disables(self):
        assert parse_plan("") is None
        assert parse_plan("   ;  ; ") is None

    def test_bare_site_defaults(self):
        plan = parse_plan("solver.error")
        (spec,) = plan.specs
        assert spec.site == "solver.error"
        assert (spec.times, spec.match, spec.after) == (1, "*", 0)
        assert spec.p is None
        assert spec.sleep_s == 3600.0

    def test_full_parameterisation(self):
        plan = parse_plan(
            "worker.hang:match=fleet-*,times=3,after=2,sleep=0.5;"
            "solver.error:p=0.25,seed=7"
        )
        hang, err = plan.specs
        assert (hang.site, hang.times, hang.match, hang.after) == (
            "worker.hang", 3, "fleet-*", 2,
        )
        assert hang.sleep_s == 0.5
        assert (err.p, err.seed) == (0.25, 7)
        # Clause position disambiguates same-site clauses in state files.
        assert hang.injector_id == "worker.hang.0"
        assert err.injector_id == "solver.error.1"

    def test_unknown_site_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            parse_plan("solver.exploder")

    def test_unknown_parameter_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="unknown fault parameter"):
            parse_plan("worker.hang:sleep_s=60")

    def test_malformed_parameter_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="malformed fault parameter"):
            parse_plan("worker.crash:times")

    def test_non_numeric_value_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="invalid fault parameter"):
            parse_plan("worker.crash:times=lots")

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="times must be >= 1"):
            parse_plan("worker.crash:times=0")

    def test_probability_range_checked(self):
        with pytest.raises(ConfigurationError, match="p must be in"):
            parse_plan("solver.error:p=1.5")


# ---------------------------------------------------------------------------
# Injector counters
# ---------------------------------------------------------------------------


class TestFiringSemantics:
    def test_times_bounds_firings(self):
        plan = parse_plan("solver.error:times=2")
        fired = [plan.should_fire("solver.error", "k") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_match_filters_by_key(self):
        plan = parse_plan("solver.error:match=fleet-*,times=10")
        assert plan.should_fire("solver.error", "other") is None
        assert plan.should_fire("solver.error", "fleet-3") is not None
        # Other sites never consult this clause.
        assert plan.should_fire("worker.crash", "fleet-3") is None

    def test_after_skips_leading_calls(self):
        plan = parse_plan("solver.error:after=2,times=1")
        fired = [plan.should_fire("solver.error", "k") is not None for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_probability_stream_is_deterministic(self):
        def draws(seed: int) -> list:
            plan = parse_plan(f"solver.error:p=0.5,seed={seed},times=1000")
            return [
                plan.should_fire("solver.error", "k") is not None for _ in range(40)
            ]

        first, second = draws(3), draws(3)
        assert first == second  # same seed, same stream
        assert any(first) and not all(first)  # p=0.5 actually gates
        assert draws(4) != first  # seed participates

    def test_state_dir_claims_are_exclusive(self, tmp_path):
        # Two plans (modelling two processes) race for times=3 slots: the
        # fleet-wide total must be exactly 3, no matter who fires.
        a = parse_plan("solver.error:times=3", state_dir=tmp_path)
        b = parse_plan("solver.error:times=3", state_dir=tmp_path)
        fired = 0
        for _ in range(5):
            fired += a.should_fire("solver.error", "k") is not None
            fired += b.should_fire("solver.error", "k") is not None
        assert fired == 3
        assert len(list(tmp_path.iterdir())) == 3  # one claim file per slot


# ---------------------------------------------------------------------------
# Process-wide switchboard
# ---------------------------------------------------------------------------


class TestConfigure:
    def test_fire_is_inert_without_a_plan(self):
        assert not faults.faults_enabled()
        assert fire("solver.error", key="k") is False

    def test_configure_arms_and_disarms(self):
        configure("cache.corrupt:times=1")
        assert faults.faults_enabled()
        assert fire("cache.corrupt", key="k") is True
        configure(None)
        assert not faults.faults_enabled()

    def test_env_reconfigure_is_idempotent(self, monkeypatch):
        # Same environment: keep the armed plan's spent counters, do not
        # re-arm (a worker re-entering configure_from_env must not get a
        # fresh ``times`` budget).
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=1")
        plan = configure_from_env()
        with pytest.raises(InjectedFault):
            fire("solver.error", key="k")  # spends the only slot
        assert configure_from_env() is plan
        assert fire("solver.error", key="k") is False  # still spent

    def test_env_change_rearms(self, monkeypatch):
        # A *changed* spec must re-arm: the armed plan reflects the current
        # environment, not whichever test/worker configured first.
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=1")
        configure_from_env()
        with pytest.raises(InjectedFault):
            fire("solver.error", key="k")
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=1,match=k")
        configure_from_env()
        with pytest.raises(InjectedFault):
            fire("solver.error", key="k")

    def test_env_cleared_disarms(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=5")
        configure_from_env()
        assert faults.faults_enabled()
        monkeypatch.delenv(faults.FAULTS_ENV)
        assert configure_from_env() is None
        assert not faults.faults_enabled()
        assert fire("solver.error", key="k") is False

    def test_state_dir_change_rearms(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=1")
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "a"))
        plan = configure_from_env()
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "b"))
        replacement = configure_from_env()
        assert replacement is not plan
        assert replacement.state_dir == tmp_path / "b"

    def test_describe_plan(self):
        assert faults.describe_plan() == []
        configure("worker.hang:match=h*,sleep=2.5;solver.error:times=3")
        rows = faults.describe_plan()
        assert [site for site, _ in rows] == ["worker.hang", "solver.error"]
        assert rows[0][1]["match"] == "h*"
        assert rows[0][1]["sleep_s"] == 2.5
        assert rows[1][1]["times"] == 3


class TestFireActions:
    def test_solver_error_raises_injected_fault(self):
        configure("solver.error:times=1")
        with pytest.raises(InjectedFault, match="injected transient solver error"):
            fire("solver.error", key="k")
        assert fire("solver.error", key="k") is False  # budget spent

    def test_store_io_raises_operational_error(self):
        configure("store.io:times=1")
        with pytest.raises(sqlite3.OperationalError, match="injected store I/O"):
            fire("store.io", key="k")

    def test_cache_corrupt_returns_true_for_the_call_site(self):
        configure("cache.corrupt:times=1")
        assert fire("cache.corrupt", key="solar_field") is True
        assert fire("cache.corrupt", key="solar_field") is False

    def test_worker_hang_sleeps_for_the_configured_duration(self):
        import time

        configure("worker.hang:times=1,sleep=0.05")
        start = time.perf_counter()
        assert fire("worker.hang", key="k") is True
        assert time.perf_counter() - start >= 0.05


# ---------------------------------------------------------------------------
# Retry backoff (the other half of transient-fault absorption)
# ---------------------------------------------------------------------------


class TestRetryBackoffDelay:
    def test_zero_base_means_immediate_retry(self):
        assert retry_backoff_delay(0.0, 5, "digest") == 0.0

    def test_deterministic_per_key_and_attempt(self):
        first = retry_backoff_delay(1.0, 2, "abc")
        assert retry_backoff_delay(1.0, 2, "abc") == first
        assert retry_backoff_delay(1.0, 3, "abc") != first
        assert retry_backoff_delay(1.0, 2, "abd") != first

    def test_exponential_envelope_with_bounded_jitter(self):
        for attempt in range(5):
            nominal = 0.5 * 2**attempt
            delay = retry_backoff_delay(0.5, attempt, "digest")
            assert 0.5 * nominal <= delay < 1.5 * nominal
