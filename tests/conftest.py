"""Shared fixtures: small, fast instances of every pipeline stage.

The heavy objects (scene, solar field, problem) are session-scoped so the
whole suite builds them once; they are deliberately small (a ~10 m roof,
two-hourly sampling of every 30th day) to keep the suite CI-friendly while
still exercising every code path end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FloorplanProblem, default_topology
from repro.gis import (
    RoofSpec,
    build_roof_scene,
    chimney,
    make_roof_grid,
    suitable_grid_for_scene,
    vent,
)
from repro.pv.datasheet import PV_MF165EB3
from repro.solar import SolarSimulationConfig, TimeGrid, compute_roof_solar_field
from repro.weather import SyntheticWeatherConfig, generate_weather


@pytest.fixture(autouse=True)
def isolated_campaign_store(tmp_path, monkeypatch):
    """Point the default campaign result store at a per-test location.

    Keeps CLI/sweep tests -- which fall back to ``$REPRO_STORE_PATH`` or the
    user cache directory -- hermetic: no test reads another test's (or the
    developer's) campaign state, and nothing leaks into ``~/.cache``.
    """
    monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "test-campaigns.sqlite"))


@pytest.fixture(autouse=True)
def isolated_faults(monkeypatch):
    """Keep fault-injection state out of (and between) tests.

    A developer's ``REPRO_FAULTS`` must not arm chaos in the suite, and a
    chaos test that arms a plan in-process must not leave spent (or live!)
    injectors behind for later tests.
    """
    from repro import faults

    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture(autouse=True)
def isolated_telemetry(monkeypatch):
    """Keep tracing and log-level state out of (and between) tests.

    A developer's ``REPRO_TRACE``/``REPRO_LOG_LEVEL`` must not leak into the
    suite, and a test that enables tracing must not leave the process-wide
    tracer recording for later tests.
    """
    from repro import telemetry

    monkeypatch.delenv(telemetry.TRACE_ENV, raising=False)
    monkeypatch.delenv(telemetry.LOG_LEVEL_ENV, raising=False)
    telemetry.configure(None)
    yield
    telemetry.configure(None)


@pytest.fixture(scope="session")
def small_time_grid() -> TimeGrid:
    """Two-hourly samples of every 30th day (156 samples)."""
    return TimeGrid(step_minutes=120.0, day_stride=30)


@pytest.fixture(scope="session")
def small_roof_spec() -> RoofSpec:
    """A 12 m x 6 m south-facing roof with a chimney and two vents."""
    return RoofSpec(
        name="test-roof",
        width_m=12.0,
        depth_m=6.0,
        tilt_deg=26.0,
        azimuth_deg=10.0,
        eave_height_m=5.0,
        edge_setback_m=0.2,
        obstacles=(
            chimney(3.0, 4.5, side_m=0.8, height_m=1.6),
            vent(7.0, 2.0, side_m=0.4, height_m=0.8),
            vent(9.5, 4.0, side_m=0.4, height_m=0.9),
        ),
        surface_roughness_m=0.08,
        roughness_correlation_m=1.0,
        roughness_seed=5,
    )


@pytest.fixture(scope="session")
def small_scene(small_roof_spec):
    """The rasterised scene of the small roof."""
    return build_roof_scene(small_roof_spec, dsm_pitch=0.4)


@pytest.fixture(scope="session")
def small_grid(small_scene):
    """The suitable-area-restricted virtual grid of the small roof."""
    grid = make_roof_grid(small_scene, pitch=0.2)
    return suitable_grid_for_scene(small_scene, grid)


@pytest.fixture(scope="session")
def small_weather(small_time_grid):
    """A deterministic synthetic weather trace."""
    return generate_weather(small_time_grid, SyntheticWeatherConfig(seed=3))


@pytest.fixture(scope="session")
def small_solar(small_scene, small_grid, small_weather):
    """The roof solar field of the small roof."""
    config = SolarSimulationConfig(n_horizon_sectors=16, horizon_max_distance_m=25.0)
    return compute_roof_solar_field(small_scene, small_grid, small_weather, config)


@pytest.fixture(scope="session")
def small_problem(small_grid, small_solar) -> FloorplanProblem:
    """A 6-module (3 series x 2 parallel) floorplanning instance."""
    return FloorplanProblem(
        grid=small_grid,
        solar=small_solar,
        n_modules=6,
        topology=default_topology(6, n_series=3),
        datasheet=PV_MF165EB3,
        label="test-problem",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A seeded random generator for per-test randomness."""
    return np.random.default_rng(12345)
