"""Unit tests for the PV electrical substrate (datasheet, cell, module,
thermal, array, MPPT, wiring)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import PVModelError, TopologyError
from repro.geometry import Point2D
from repro.pv import (
    CellTemperatureModel,
    EmpiricalModuleModel,
    MPPTModel,
    NOCTTemperatureModel,
    PVArray,
    PV_MF165EB3,
    SeriesParallelTopology,
    SingleDiodeCell,
    WiringSpec,
    annual_energy_loss_wh,
    get_datasheet,
    paper_module_model,
    perturb_and_observe,
    reference_cell_for_module,
    resistive_power_loss,
    string_extra_length,
    temperature_rise_at_stc,
    wiring_overhead_report,
)


class TestDatasheet:
    def test_paper_module_reference_values(self):
        assert PV_MF165EB3.p_max_ref == 165.0
        assert PV_MF165EB3.v_oc_ref == pytest.approx(30.4)
        assert PV_MF165EB3.i_sc_ref == pytest.approx(7.36)

    def test_footprint_in_cells(self):
        assert PV_MF165EB3.cells_footprint(0.20) == (8, 4)

    def test_footprint_incompatible_pitch(self):
        with pytest.raises(PVModelError):
            PV_MF165EB3.cells_footprint(0.3)

    def test_efficiency_and_fill_factor(self):
        assert 0.10 < PV_MF165EB3.efficiency_stc < 0.20
        assert 0.6 < PV_MF165EB3.fill_factor < 0.85

    def test_registry_lookup(self):
        assert get_datasheet("pv-mf165eb3") is PV_MF165EB3
        with pytest.raises(PVModelError):
            get_datasheet("does-not-exist")

    def test_invalid_datasheet_rejected(self):
        with pytest.raises(PVModelError):
            dataclasses.replace(PV_MF165EB3, v_mpp_ref=31.0)  # Vmpp > Voc
        with pytest.raises(PVModelError):
            dataclasses.replace(PV_MF165EB3, gamma_p_per_k=0.001)


class TestThermal:
    def test_paper_k_value(self):
        model = CellTemperatureModel()
        assert model.k == pytest.approx(0.75 / 15.0)

    def test_cell_temperature_rises_with_irradiance(self):
        model = CellTemperatureModel()
        t = model.cell_temperature(np.array([20.0, 20.0]), np.array([0.0, 1000.0]))
        assert t[0] == pytest.approx(20.0)
        assert t[1] == pytest.approx(20.0 + 50.0)

    def test_stc_temperature_rise(self):
        assert temperature_rise_at_stc(CellTemperatureModel()) == pytest.approx(50.0)

    def test_negative_irradiance_rejected(self):
        with pytest.raises(PVModelError):
            CellTemperatureModel().cell_temperature(np.array([20.0]), np.array([-1.0]))

    def test_noct_model(self):
        model = NOCTTemperatureModel(noct_c=45.0)
        t = model.cell_temperature(np.array([20.0]), np.array([800.0]))
        assert t[0] == pytest.approx(45.0)

    def test_invalid_parameters(self):
        with pytest.raises(PVModelError):
            CellTemperatureModel(absorptivity=0.0)
        with pytest.raises(PVModelError):
            NOCTTemperatureModel(noct_c=10.0)


class TestEmpiricalModuleModel:
    def test_stc_anchors(self):
        model = paper_module_model()
        power = model.power_at_cell_temperature(np.array([1000.0]), np.array([25.0]))
        voltage = model.voltage_at_cell_temperature(np.array([1000.0]), np.array([25.0]))
        assert power[0] == pytest.approx(165.0, rel=1e-6)
        assert voltage[0] == pytest.approx(PV_MF165EB3.v_mpp_ref, rel=1e-6)

    def test_power_proportional_to_irradiance(self):
        model = paper_module_model()
        power = model.power_at_cell_temperature(
            np.array([250.0, 500.0, 1000.0]), np.array([25.0] * 3)
        )
        assert power[1] / power[0] == pytest.approx(2.0)
        assert power[2] / power[1] == pytest.approx(2.0)

    def test_power_decreases_with_temperature(self):
        model = paper_module_model()
        cold = model.power_at_cell_temperature(np.array([1000.0]), np.array([10.0]))
        hot = model.power_at_cell_temperature(np.array([1000.0]), np.array([60.0]))
        assert hot[0] < cold[0]
        # -0.48 %/K over 50 K ~ -24 %
        assert hot[0] / cold[0] == pytest.approx(1 - 0.0048 * 50 / (1 + 0.0048 * 15), rel=0.02)

    def test_voltage_nearly_independent_of_irradiance(self):
        model = paper_module_model()
        voltage = model.voltage_at_cell_temperature(
            np.array([200.0, 1000.0]), np.array([25.0, 25.0])
        )
        assert abs(voltage[1] - voltage[0]) / voltage[1] < 0.12

    def test_current_is_power_over_voltage(self):
        model = paper_module_model()
        op = model.operating_point(np.array([800.0]), np.array([20.0]))
        assert op.current_a[0] == pytest.approx(op.power_w[0] / op.voltage_v[0])

    def test_dark_module_is_off(self):
        model = paper_module_model()
        op = model.operating_point(np.array([0.0]), np.array([20.0]))
        assert op.power_w[0] == 0.0
        assert op.voltage_v[0] == 0.0
        assert op.current_a[0] == 0.0

    def test_ambient_vs_cell_temperature_interface(self):
        model = paper_module_model()
        # With ambient input, the cell heats up by k*G and power drops.
        from_ambient = model.power(np.array([1000.0]), np.array([25.0]))
        at_cell = model.power_at_cell_temperature(np.array([1000.0]), np.array([25.0]))
        assert from_ambient[0] < at_cell[0]

    def test_normalized_characteristics_at_stc(self):
        model = paper_module_model()
        voc, isc, pmax = model.normalized_characteristics(np.array([1000.0]))
        assert voc[0] == pytest.approx(1.0, rel=1e-6)
        assert isc[0] == pytest.approx(1.0, rel=1e-6)
        assert pmax[0] == pytest.approx(1.0, rel=1e-6)

    def test_isc_proportional_voc_weakly_dependent(self):
        model = paper_module_model()
        voc, isc, _ = model.normalized_characteristics(np.array([200.0, 1000.0]))
        assert isc[1] / isc[0] == pytest.approx(5.0, rel=1e-6)
        assert 0.85 < voc[0] < 1.0

    def test_negative_irradiance_rejected(self):
        with pytest.raises(PVModelError):
            paper_module_model().power(np.array([-10.0]), np.array([20.0]))

    def test_bad_voltage_fit_rejected(self):
        with pytest.raises(PVModelError):
            EmpiricalModuleModel(voltage_irradiance_intercept=0.5, voltage_irradiance_slope=0.0)


class TestSingleDiodeCell:
    def test_short_circuit_current_proportional_to_irradiance(self):
        cell = SingleDiodeCell()
        isc_full = cell.short_circuit_current(1000.0)
        isc_half = cell.short_circuit_current(500.0)
        assert isc_half == pytest.approx(isc_full / 2.0, rel=0.02)

    def test_voc_increases_with_irradiance_logarithmically(self):
        cell = SingleDiodeCell()
        voc_200 = cell.open_circuit_voltage(200.0)
        voc_1000 = cell.open_circuit_voltage(1000.0)
        assert voc_1000 > voc_200
        assert (voc_1000 - voc_200) < 0.2 * voc_1000

    def test_voc_decreases_with_temperature(self):
        cell = SingleDiodeCell()
        assert cell.open_circuit_voltage(1000.0, 60.0) < cell.open_circuit_voltage(1000.0, 25.0)

    def test_iv_curve_monotone_decreasing(self):
        cell = SingleDiodeCell()
        voltages, currents = cell.iv_curve(800.0, n_points=100)
        assert voltages.shape == currents.shape == (100,)
        assert np.all(np.diff(currents) <= 1e-6)

    def test_mpp_between_zero_and_voc(self):
        cell = SingleDiodeCell()
        v_mpp, i_mpp, p_mpp = cell.maximum_power_point(1000.0)
        assert 0 < v_mpp < cell.open_circuit_voltage(1000.0)
        assert p_mpp == pytest.approx(v_mpp * i_mpp)

    def test_dark_cell(self):
        cell = SingleDiodeCell()
        assert cell.open_circuit_voltage(0.0) == 0.0

    def test_reference_cell_matches_module_voc(self):
        cell = reference_cell_for_module(module_isc=7.36, module_voc=30.4, n_cells=50)
        assert cell.open_circuit_voltage(1000.0) * 50 == pytest.approx(30.4, rel=0.02)

    def test_invalid_parameters(self):
        with pytest.raises(PVModelError):
            SingleDiodeCell(photocurrent_ref=-1.0)
        with pytest.raises(PVModelError):
            SingleDiodeCell(ideality_factor=5.0)


class TestTopologyAndArray:
    def test_topology_counts(self):
        topology = SeriesParallelTopology(n_series=8, n_parallel=4)
        assert topology.n_modules == 32
        assert topology.string_of(0) == 0
        assert topology.string_of(8) == 1
        assert topology.position_in_string(9) == 1
        assert topology.modules_of_string(3) == list(range(24, 32))

    def test_topology_validation(self):
        with pytest.raises(TopologyError):
            SeriesParallelTopology(n_series=0, n_parallel=1)
        with pytest.raises(TopologyError):
            SeriesParallelTopology(8, 2).string_of(16)
        with pytest.raises(TopologyError):
            SeriesParallelTopology.for_modules(10, 4)

    def test_for_modules(self):
        topology = SeriesParallelTopology.for_modules(32, 8)
        assert (topology.n_series, topology.n_parallel) == (8, 4)

    def test_uniform_conditions_no_mismatch(self):
        array = PVArray(SeriesParallelTopology(4, 2))
        irradiance = np.full(8, 800.0)
        point = array.operating_point_from_conditions(irradiance, 20.0)
        ideal = array.sum_of_module_powers(irradiance, 20.0)
        assert point.power_w == pytest.approx(ideal, rel=1e-9)

    def test_weak_module_bottlenecks_its_string(self):
        array = PVArray(SeriesParallelTopology(4, 2))
        irradiance = np.full(8, 800.0)
        irradiance[2] = 200.0  # one weak module in string 0
        point = array.operating_point_from_conditions(irradiance, 20.0)
        ideal = array.sum_of_module_powers(irradiance, 20.0)
        assert point.power_w < ideal
        # String 0 current is capped by the weak module, string 1 is not.
        assert point.string_currents_a[0] < point.string_currents_a[1]

    def test_concentrating_weakness_beats_spreading_it(self):
        """The paper's topology-aware argument: grouping weak modules in one
        string extracts more energy than spreading them across strings."""
        array = PVArray(SeriesParallelTopology(4, 2))
        spread = np.array([800.0, 800.0, 800.0, 300.0, 800.0, 800.0, 800.0, 300.0])
        grouped = np.array([800.0] * 4 + [300.0, 300.0, 800.0, 800.0])
        p_spread = float(array.power_from_conditions(spread, 20.0))
        p_grouped = float(array.power_from_conditions(grouped, 20.0))
        assert p_grouped > p_spread

    def test_mismatch_loss_fraction_bounds(self):
        array = PVArray(SeriesParallelTopology(4, 2))
        irradiance = np.linspace(300, 900, 8)
        loss = array.mismatch_loss_fraction(irradiance, 20.0)
        assert 0.0 <= float(loss) < 1.0

    def test_time_axis_broadcasting(self):
        array = PVArray(SeriesParallelTopology(2, 2))
        irradiance = np.random.default_rng(0).uniform(100, 900, size=(5, 4))
        ambient = np.full(5, 15.0)
        point = array.operating_point_from_conditions(irradiance, ambient)
        assert point.power_w.shape == (5,)
        assert point.string_currents_a.shape == (5, 2)

    def test_wrong_module_count_rejected(self):
        array = PVArray(SeriesParallelTopology(4, 2))
        with pytest.raises(TopologyError):
            array.power_from_conditions(np.full(6, 500.0), 20.0)

    def test_aggregate_shape_mismatch(self):
        array = PVArray(SeriesParallelTopology(2, 2))
        with pytest.raises(TopologyError):
            array.aggregate(np.zeros(4), np.zeros(3))


class TestMPPT:
    def test_efficiency_application(self):
        mppt = MPPTModel(tracking_efficiency=0.98, converter_efficiency=0.95)
        assert mppt.extracted_power(np.array([100.0]))[0] == pytest.approx(93.1)

    def test_invalid_efficiency(self):
        with pytest.raises(PVModelError):
            MPPTModel(tracking_efficiency=0.0)
        with pytest.raises(PVModelError):
            MPPTModel(converter_efficiency=1.5)

    def test_negative_power_rejected(self):
        with pytest.raises(PVModelError):
            MPPTModel().extracted_power(np.array([-5.0]))

    def test_perturb_and_observe_finds_peak(self):
        curve = lambda v: -((v - 24.0) ** 2) + 160.0  # noqa: E731
        result = perturb_and_observe(
            curve, v_start=5.0, v_min=0.0, v_max=40.0, step=0.5, n_steps=300
        )
        assert result.converged_voltage == pytest.approx(24.0, abs=1.0)
        assert result.converged_power == pytest.approx(160.0, abs=1.0)

    def test_perturb_and_observe_validation(self):
        with pytest.raises(PVModelError):
            perturb_and_observe(lambda v: v, v_start=5.0, v_min=10.0, v_max=20.0)


class TestWiring:
    def test_compact_placement_has_zero_overhead(self):
        positions = [Point2D(0.0, 0.0), Point2D(0.8, 0.0), Point2D(1.6, 0.0)]
        assert string_extra_length(positions, WiringSpec(connector_length_m=1.0)) == 0.0

    def test_extra_length_is_manhattan_minus_connector(self):
        positions = [Point2D(0.0, 0.0), Point2D(3.0, 2.0)]
        extra = string_extra_length(positions, WiringSpec(connector_length_m=1.0))
        assert extra == pytest.approx(4.0)

    def test_single_module_string(self):
        assert string_extra_length([Point2D(0, 0)]) == 0.0

    def test_resistive_loss_paper_figure(self):
        # AWG10 at 4 A: ~0.112 W per metre of extra cable (paper Section V-C).
        loss = resistive_power_loss(1.0, 4.0, WiringSpec())
        assert loss == pytest.approx(0.112, rel=1e-6)

    def test_annual_energy_loss_scales_with_duty(self):
        full = annual_energy_loss_wh(10.0, 4.0, duty_factor=1.0)
        half = annual_energy_loss_wh(10.0, 4.0, duty_factor=0.5)
        assert half == pytest.approx(full / 2.0)

    def test_overhead_report(self):
        strings = [
            [Point2D(0, 0), Point2D(2.0, 0.0)],
            [Point2D(0, 2), Point2D(4.0, 2.0)],
        ]
        report = wiring_overhead_report(strings, current_a=4.0)
        assert report.total_extra_m == pytest.approx(1.0 + 3.0)
        assert report.extra_cost == pytest.approx(4.0)
        assert report.power_loss_w > 0
        assert report.loss_fraction_of(1e6) < 0.01

    def test_overhead_report_validation(self):
        report = wiring_overhead_report([[Point2D(0, 0), Point2D(5, 0)]])
        with pytest.raises(PVModelError):
            report.loss_fraction_of(0.0)

    def test_invalid_wiring_spec(self):
        with pytest.raises(PVModelError):
            WiringSpec(resistance_per_m=0.0)
        with pytest.raises(PVModelError):
            resistive_power_loss(-1.0, 4.0)
