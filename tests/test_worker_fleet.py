"""Cooperative worker fleets: atomic claims, lease fencing, fleet chaos.

The store is the queue: N workers (threads, processes or hosts sharing
one SQLite file) pull points via
:meth:`~repro.runner.store.ResultStore.claim_next_pending` and mark them
through lease-fenced terminal writes.  These tests pin the concurrency
contract from the unit level (one claim per point, exactly one winner per
reclaim race) up to a real 3-process fleet with a SIGKILLed member, whose
merged results must be fingerprint-identical to a serial run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.gis import RoofSpec
from repro.runner import (
    ResultStore,
    StoreBackend,
    available_schemes,
    register_backend,
    resolve_store,
    run_batch,
    run_worker,
    scenario_content_digest,
    store_from_url,
)
from repro.runner.store import STATUS_DONE, STATUS_FAILED, STATUS_PENDING, STATUS_RUNNING
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec, builtin_scenarios


def tiny_spec(name: str, solver: str = "greedy", n_modules: int = 2) -> ScenarioSpec:
    """A seconds-scale scenario with a roof unique to ``name``."""
    return ScenarioSpec(
        name=name,
        roof=RoofSpec(
            name=f"{name}-roof",
            width_m=6.0,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=n_modules,
        n_series=n_modules,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name=solver),
    )


def enroll(store_path: Path, campaign: str, specs) -> list:
    with ResultStore(store_path) as store:
        return store.enroll(campaign, specs)


# ---------------------------------------------------------------------------
# Atomic claims
# ---------------------------------------------------------------------------


class TestClaimNextPending:
    def test_claims_oldest_pending_and_stamps_lease(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        specs = [tiny_spec("first"), tiny_spec("second")]
        enroll(store_path, "camp", specs)
        with ResultStore(store_path) as store:
            claimed = store.claim_next_pending("camp", owner="w1")
            assert claimed is not None and not claimed.adopted
            assert claimed.point.name == "first"  # enrollment order
            assert claimed.point.status == STATUS_RUNNING
            assert claimed.point.lease_owner == "w1"
            assert claimed.point.attempts == 1
            assert claimed.point.heartbeat_ts is not None

    def test_concurrent_claims_never_hand_out_the_same_point(self, tmp_path):
        """Two handles claiming in lockstep each drain distinct points."""
        store_path = tmp_path / "store.sqlite"
        specs = [tiny_spec(f"p{i}") for i in range(6)]
        enroll(store_path, "camp", specs)
        claimed: list = []
        errors: list = []
        barrier = threading.Barrier(2)

        def claim_all(owner: str) -> None:
            try:
                with ResultStore(store_path) as store:
                    barrier.wait()
                    while True:
                        got = store.claim_next_pending("camp", owner=owner)
                        if got is None:
                            return
                        claimed.append((owner, got.point.digest))
            except Exception as exc:  # pragma: no cover - the failure branch
                errors.append(exc)

        threads = [
            threading.Thread(target=claim_all, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        digests = [digest for _, digest in claimed]
        assert len(digests) == 6
        assert len(set(digests)) == 6  # no double-claims under contention

    def test_exhausted_queue_returns_none(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "camp", [tiny_spec("only")])
        with ResultStore(store_path) as store:
            assert store.claim_next_pending("camp", owner="w1") is not None
            # The remaining row is running with a fresh heartbeat: nothing
            # left to claim, and terminal rows never become claimable.
            assert store.claim_next_pending("camp", owner="w2") is None
            store.mark_done(
                "camp",
                scenario_content_digest(tiny_spec("only")),
                {"scenario": "only"},
                require_owner="w1",
            )
            assert store.claim_next_pending("camp", owner="w2") is None

    def test_adopts_stale_lease_but_not_fresh_ones(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        spec = tiny_spec("orphan")
        enroll(store_path, "camp", [spec])
        with ResultStore(store_path) as store:
            first = store.claim_next_pending("camp", owner="dead:1")
            assert first is not None
            # Fresh heartbeat: a sibling must not steal the lease.
            assert store.claim_next_pending("camp", owner="w2") is None
            # Stale heartbeat (cutoff in the future): adopted in place.
            adopted = store.claim_next_pending(
                "camp", owner="w2", now=time.time() + 120.0, stale_after_s=60.0
            )
            assert adopted is not None and adopted.adopted
            assert adopted.point.lease_owner == "w2"
            assert adopted.point.attempts == 2  # one per started attempt

    def test_fenced_marks_protect_adopted_points(self, tmp_path):
        """The original owner's late result is discarded after adoption --
        completion-marking is at-most-once."""
        store_path = tmp_path / "store.sqlite"
        spec = tiny_spec("contested")
        digest = scenario_content_digest(spec)
        enroll(store_path, "camp", [spec])
        with ResultStore(store_path) as store:
            store.claim_next_pending("camp", owner="slow-worker")
            store.claim_next_pending(
                "camp", owner="adopter", now=time.time() + 120.0
            )
            # The stalled original worker finishes anyway: fenced write is a
            # no-op, the adopter's completion lands.
            assert (
                store.mark_done(
                    "camp", digest, {"scenario": "x"}, require_owner="slow-worker"
                )
                is False
            )
            assert (
                store.mark_failed(
                    "camp", digest, "late failure", require_owner="slow-worker"
                )
                is False
            )
            assert store.point("camp", digest).status == STATUS_RUNNING
            assert (
                store.mark_done(
                    "camp", digest, {"scenario": "x"}, require_owner="adopter"
                )
                is True
            )
            assert store.point("camp", digest).status == STATUS_DONE

    def test_release_hands_claim_back_to_pending(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        spec = tiny_spec("returned")
        digest = scenario_content_digest(spec)
        enroll(store_path, "camp", [spec])
        with ResultStore(store_path) as store:
            store.claim_next_pending("camp", owner="w1")
            assert store.release("camp", digest, "w1") is True
            record = store.point("camp", digest)
            assert record.status == STATUS_PENDING
            assert record.lease_owner is None
            # Only the lease holder can release; a second release is a no-op.
            assert store.release("camp", digest, "w1") is False
            again = store.claim_next_pending("camp", owner="w2")
            assert again is not None and not again.adopted


# ---------------------------------------------------------------------------
# Reclaim races
# ---------------------------------------------------------------------------


class TestReclaimRaces:
    def _stale_row(self, store_path: Path, campaign: str) -> str:
        spec = tiny_spec("stale-point")
        digest = scenario_content_digest(spec)
        enroll(store_path, campaign, [spec])
        with ResultStore(store_path) as store:
            store.mark_running(campaign, digest, lease_owner="dead:1")
        return digest

    def test_concurrent_reclaims_produce_exactly_one_reclamation(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        self._stale_row(store_path, "race")
        cutoff_now = time.time() + 120.0
        reclaimed: list = []
        errors: list = []
        barrier = threading.Barrier(2)

        def reclaim() -> None:
            try:
                with ResultStore(store_path) as store:
                    barrier.wait()
                    reclaimed.append(
                        store.reclaim_stale("race", 60.0, now=cutoff_now)
                    )
            except Exception as exc:  # pragma: no cover - the failure branch
                errors.append(exc)

        threads = [threading.Thread(target=reclaim) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        winners = [digests for digests in reclaimed if digests]
        assert len(winners) == 1  # exactly one driver reclaimed the row
        with ResultStore(store_path) as store:
            (record,) = store.points("race", STATUS_FAILED)
            assert record.attempts == 1  # reclamation never double-charges
            assert "stale lease reclaimed" in record.error
            assert record.error.count("stale lease reclaimed") == 1

    def test_claim_racing_reclaim_cannot_double_run_the_point(self, tmp_path):
        """Whichever of adopt-claim and reclaim wins, the loser is a no-op:
        the row ends in exactly one post-race state with one extra attempt
        at most."""
        store_path = tmp_path / "store.sqlite"
        digest = self._stale_row(store_path, "race2")
        cutoff_now = time.time() + 120.0
        outcomes: dict = {}
        errors: list = []
        barrier = threading.Barrier(2)

        def adopt() -> None:
            try:
                with ResultStore(store_path) as store:
                    barrier.wait()
                    got = store.claim_next_pending(
                        "race2", owner="adopter", now=cutoff_now
                    )
                    outcomes["claimed"] = got is not None
            except Exception as exc:  # pragma: no cover - the failure branch
                errors.append(exc)

        def reclaim() -> None:
            try:
                with ResultStore(store_path) as store:
                    barrier.wait()
                    outcomes["reclaimed"] = bool(
                        store.reclaim_stale("race2", 60.0, now=cutoff_now)
                    )
            except Exception as exc:  # pragma: no cover - the failure branch
                errors.append(exc)

        threads = [threading.Thread(target=adopt), threading.Thread(target=reclaim)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        with ResultStore(store_path) as store:
            record = store.point("race2", digest)
        if outcomes["claimed"] and not outcomes["reclaimed"]:
            # Adoption won; reclaim saw a fresh heartbeat and backed off.
            assert record.status == STATUS_RUNNING
            assert record.lease_owner == "adopter"
            assert record.attempts == 2
        elif outcomes["reclaimed"] and not outcomes["claimed"]:
            # Reclaim won; the claim found nothing runnable.
            assert record.status == STATUS_FAILED
            assert record.attempts == 1
        else:
            # Serialized IMMEDIATE transactions make both-win and
            # neither-win impossible: the first writer flips the row, the
            # second finds it no longer stale-running and backs off.
            pytest.fail(f"race produced {outcomes} with record {record}")


# ---------------------------------------------------------------------------
# The worker daemon, in process
# ---------------------------------------------------------------------------


class TestRunWorker:
    def test_serial_worker_drains_queue_and_matches_run_batch(self, tmp_path):
        specs = [tiny_spec(f"point-{i}") for i in range(3)]
        cache_dir = tmp_path / "cache"
        reference = {
            result.scenario: result.fingerprint()
            for result in run_batch(specs, cache=cache_dir, parallel=False).results
        }

        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "fleet", specs)
        summary = run_worker(
            "fleet", store=store_path, worker_id="solo", cache=cache_dir, serial=True
        )
        assert (summary.claimed, summary.done, summary.failed) == (3, 3, 0)
        assert summary.adopted == summary.lost_leases == 0
        assert "claimed 3, done 3" in summary.report()
        with ResultStore(store_path) as store:
            results = store.results("fleet")
            assert all(record.attempts == 1 for record in store.points("fleet"))
        assert {
            result.scenario: result.fingerprint() for result in results
        } == reference

    def test_pooled_worker_matches_too(self, tmp_path):
        spec = tiny_spec("pooled-point")
        cache_dir = tmp_path / "cache"
        reference = run_batch([spec], cache=cache_dir, parallel=False).results[0]
        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "fleet", [spec])
        summary = run_worker(
            "fleet", store=store_path, worker_id="pooled", cache=cache_dir
        )
        assert (summary.done, summary.failed) == (1, 0)
        with ResultStore(store_path) as store:
            (result,) = store.results("fleet")
        assert result.fingerprint() == reference.fingerprint()

    def test_retries_absorb_transient_solver_errors(self, tmp_path, monkeypatch):
        # Arm via the environment: run_worker re-reads $REPRO_FAULTS on
        # startup and would disarm a directly configured plan.
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=2")
        spec = tiny_spec("flaky")
        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "fleet", [spec])
        summary = run_worker(
            "fleet",
            store=store_path,
            worker_id="retrier",
            serial=True,
            use_cache=False,
            retries=2,
            retry_backoff_s=0.01,
        )
        assert (summary.done, summary.failed, summary.retried) == (1, 0, 2)
        with ResultStore(store_path) as store:
            record = store.point("fleet", scenario_content_digest(spec))
        assert record.status == STATUS_DONE
        assert record.attempts == 3  # two injected failures + the success

    def test_exhausted_retries_mark_failed_with_point_attribution(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=10")
        spec = tiny_spec("doomed")
        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "fleet", [spec])
        summary = run_worker(
            "fleet",
            store=store_path,
            worker_id="w",
            serial=True,
            use_cache=False,
            retries=1,
            retry_backoff_s=0.01,
        )
        assert (summary.done, summary.failed, summary.retried) == (0, 1, 1)
        with ResultStore(store_path) as store:
            record = store.point("fleet", scenario_content_digest(spec))
        assert record.status == STATUS_FAILED
        assert "doomed" in record.error and record.digest[:12] in record.error

    def test_serial_timeout_is_post_hoc_and_terminal(self, tmp_path):
        spec = tiny_spec("overlong")
        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "fleet", [spec])
        summary = run_worker(
            "fleet",
            store=store_path,
            worker_id="w",
            serial=True,
            use_cache=False,
            timeout_s=0.001,
        )
        assert (summary.done, summary.timed_out) == (0, 1)
        with ResultStore(store_path) as store:
            record = store.point("fleet", scenario_content_digest(spec))
        assert record.status == "timed_out"
        assert "timeout_s" in record.error

    def test_max_points_and_no_wait_bound_the_loop(self, tmp_path):
        specs = [tiny_spec(f"bounded-{i}") for i in range(3)]
        store_path = tmp_path / "store.sqlite"
        cache_dir = tmp_path / "cache"
        enroll(store_path, "fleet", specs)
        first = run_worker(
            "fleet",
            store=store_path,
            worker_id="w1",
            cache=cache_dir,
            serial=True,
            max_points=1,
        )
        assert (first.claimed, first.done) == (1, 1)
        # Leave one row running under a live (fresh) foreign lease: a
        # no-wait worker finishes the claimable rows and exits instead of
        # waiting to adopt.
        with ResultStore(store_path) as store:
            held = store.claim_next_pending("fleet", owner="other:1")
            assert held is not None
        second = run_worker(
            "fleet",
            store=store_path,
            worker_id="w2",
            cache=cache_dir,
            serial=True,
            wait_for_stragglers=False,
        )
        assert (second.claimed, second.done) == (1, 1)
        with ResultStore(store_path) as store:
            counts = store.status_counts("fleet")
        assert counts == {
            "pending": 0,
            "running": 1,
            "done": 2,
            "failed": 0,
            "timed_out": 0,
        }

    def test_lost_lease_discards_late_result(self, tmp_path):
        """A worker that looks dead long enough to be adopted must not
        double-complete its point."""
        spec = tiny_spec("adopted-under-me")
        digest = scenario_content_digest(spec)
        store_path = tmp_path / "store.sqlite"
        enroll(store_path, "fleet", [spec])
        adopter_done = threading.Event()

        real_claim = ResultStore.claim_next_pending

        def claim_then_lose(self, campaign, **kwargs):
            claimed = real_claim(self, campaign, **kwargs)
            if claimed is not None and kwargs.get("owner") == "victim":
                # Between our claim and our run, a sibling adopts the row
                # (as it would after stale_after_s of silence) and finishes
                # it first.
                with ResultStore(store_path) as other:
                    adopted = real_claim(
                        other,
                        campaign,
                        owner="adopter",
                        now=time.time() + 120.0,
                    )
                    assert adopted is not None and adopted.adopted
                    other.mark_done(
                        campaign,
                        digest,
                        {"scenario": spec.name},
                        require_owner="adopter",
                    )
                adopter_done.set()
            return claimed

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ResultStore, "claim_next_pending", claim_then_lose)
            summary = run_worker(
                "fleet",
                store=store_path,
                worker_id="victim",
                serial=True,
                use_cache=False,
            )
        assert adopter_done.is_set()
        assert (summary.claimed, summary.done, summary.lost_leases) == (1, 0, 1)
        with ResultStore(store_path) as store:
            record = store.point("fleet", digest)
        assert record.status == STATUS_DONE
        assert record.result_dict == {"scenario": spec.name}  # the adopter's write

    def test_worker_validates_arguments(self, tmp_path):
        with pytest.raises(ConfigurationError, match="retries"):
            run_worker("x", store=tmp_path / "s.sqlite", retries=-1)
        with pytest.raises(ConfigurationError, match="timeout_s"):
            run_worker("x", store=tmp_path / "s.sqlite", timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="poll_s"):
            run_worker("x", store=tmp_path / "s.sqlite", poll_s=0.0)
        with pytest.raises(ConfigurationError, match="max_points"):
            run_worker("x", store=tmp_path / "s.sqlite", max_points=0)


# ---------------------------------------------------------------------------
# Store backends: the URL scheme registry
# ---------------------------------------------------------------------------


class TestStoreBackends:
    def test_sqlite_url_resolves_to_result_store(self, tmp_path):
        url = f"sqlite:///{tmp_path / 'via-url.sqlite'}"
        with resolve_store(url) as store:
            assert isinstance(store, ResultStore)
            assert isinstance(store, StoreBackend)  # protocol conformance
            store.enroll("camp", [tiny_spec("a")])
        assert (tmp_path / "via-url.sqlite").exists()

    def test_store_from_url_rejects_unknowns_actionably(self):
        assert available_schemes() == ["sqlite"]
        with pytest.raises(ConfigurationError, match="registered schemes: sqlite"):
            store_from_url("postgres://host/db")
        with pytest.raises(ConfigurationError, match="scheme://"):
            store_from_url("no-scheme-here")
        with pytest.raises(ConfigurationError, match="no host"):
            store_from_url("sqlite://host/db.sqlite")

    def test_plain_paths_keep_working_untouched(self, tmp_path):
        path = tmp_path / "plain.sqlite"
        with resolve_store(path) as store:
            assert isinstance(store, ResultStore)
        assert resolve_store("none") is None
        assert resolve_store(None) is None

    def test_register_backend_guards_against_shadowing(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("sqlite", lambda url: None)
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_backend("", lambda url: None)

    def test_custom_backend_scheme_dispatches(self):
        seen = []

        def factory(url):
            seen.append(url)
            return ResultStore(":memory:")

        register_backend("fleettest", factory, overwrite=True)
        try:
            store = store_from_url("fleettest://anything")
            store.close()
            assert seen == ["fleettest://anything"]
        finally:
            # Leave the registry as the other tests expect it.
            from repro.runner import backend as backend_module

            backend_module._BACKENDS.pop("fleettest", None)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestWorkerCli:
    def test_enroll_then_worker_then_status_fleet_view(self, tmp_path, capsys):
        from repro.cli import main

        store_path = tmp_path / "store.sqlite"
        cache_dir = tmp_path / "cache"
        spec_path = tmp_path / "point.json"
        tiny_spec("cli-point").save(spec_path)

        assert (
            main(
                [
                    "campaign",
                    "enroll",
                    "cli-fleet",
                    str(spec_path),
                    "--store",
                    str(store_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 point(s) enrolled" in out and "1 pending" in out

        assert (
            main(
                [
                    "campaign",
                    "worker",
                    "cli-fleet",
                    "--id",
                    "cli-worker",
                    "--serial",
                    "--store",
                    f"sqlite:///{store_path}",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worker 'cli-worker': claimed 1, done 1" in out

        # Fleet view: pin a running lease and confirm the per-owner line.
        with ResultStore(store_path) as store:
            store.enroll("cli-fleet", [tiny_spec("second-point")])
            store.claim_next_pending("cli-fleet", owner="fleet-w9")
        assert (
            main(["campaign", "status", "cli-fleet", "--store", str(store_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "running leases by owner" in out
        assert "fleet-w9: 1 point(s)" in out
        assert "lease=fleet-w9" in out

        payload = None
        assert (
            main(
                [
                    "campaign",
                    "status",
                    "cli-fleet",
                    "--json",
                    "--store",
                    str(store_path),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in payload}
        assert by_name["second-point"]["lease_owner"] == "fleet-w9"
        assert by_name["second-point"]["heartbeat_ts"] is not None

    def test_worker_exit_code_reflects_failures(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(faults.FAULTS_ENV, "solver.error:times=10")
        store_path = tmp_path / "store.sqlite"
        spec_path = tmp_path / "point.json"
        tiny_spec("fails").save(spec_path)
        enroll(store_path, "cli-fail", [ScenarioSpec.load(spec_path)])
        assert (
            main(
                [
                    "campaign",
                    "worker",
                    "cli-fail",
                    "--serial",
                    "--no-cache",
                    "--store",
                    str(store_path),
                ]
            )
            == 1
        )
        assert "failed 1" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Fleet chaos: 3 real worker processes, one SIGKILLed mid-point
# ---------------------------------------------------------------------------


def _worker_argv(campaign: str, store: Path, cache: Path, worker_id: str) -> list:
    return [
        sys.executable,
        "-m",
        "repro",
        "campaign",
        "worker",
        campaign,
        "--id",
        worker_id,
        "--store",
        str(store),
        "--cache-dir",
        str(cache),
        "--poll",
        "0.2",
        "--heartbeat",
        "0.5",
        "--stale-after",
        "2.0",
    ]


def _worker_env(src: Path, store: Path, extra: dict) -> dict:
    env = {**os.environ, "PYTHONPATH": str(src), "REPRO_STORE_PATH": str(store)}
    env.pop(faults.FAULTS_ENV, None)
    env.pop(faults.FAULTS_STATE_ENV, None)
    env.update(extra)
    return env


class TestFleetChaos:
    def test_fleet_converges_exactly_once_despite_sigkill_and_faults(self, tmp_path):
        """The tentpole acceptance run: the full catalog over a 3-worker
        fleet with chaos armed (worker.hang in the SIGKILL victim,
        worker.crash + store.io in a survivor) must converge with zero
        failures, one terminal state per point, and results
        fingerprint-identical to the serial single-host run."""
        src = Path(__file__).resolve().parents[1] / "src"
        specs = list(builtin_scenarios().values())
        cache_dir = tmp_path / "cache"
        campaign = "chaos-fleet"
        store_path = tmp_path / "store.sqlite"

        # Serial single-host reference run; also warms the shared stage
        # cache so the fleet pass is seconds, not minutes.
        reference = {
            result.scenario: result.fingerprint()
            for result in run_batch(specs, cache=cache_dir, parallel=False).results
        }
        enroll(store_path, campaign, specs)

        procs: dict = {}
        try:
            # The victim claims a point and hangs in-process (serial mode:
            # the SIGKILL below kills the worker itself, not a pool child),
            # leaving a lease that only goes stale -- never released.
            procs["victim"] = subprocess.Popen(
                _worker_argv(campaign, store_path, cache_dir, "victim") + ["--serial"],
                env=_worker_env(
                    src,
                    store_path,
                    {faults.FAULTS_ENV: "worker.hang:times=1,sleep=60"},
                ),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )

            # Wait until the victim demonstrably holds its lease.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if store_path.exists():
                    with ResultStore(store_path) as store:
                        held = [
                            record
                            for record in store.points(campaign, STATUS_RUNNING)
                            if record.lease_owner == "victim"
                        ]
                    if held:
                        break
                time.sleep(0.1)
            else:
                pytest.fail("victim never claimed a point")
            victim_digest = held[0].digest

            # First survivor; it also absorbs a worker crash (pool-child
            # death; the state dir makes times=1 span replacement children)
            # and injected store write errors.
            procs["crasher"] = subprocess.Popen(
                _worker_argv(campaign, store_path, cache_dir, "crasher"),
                env=_worker_env(
                    src,
                    store_path,
                    {
                        faults.FAULTS_ENV: "worker.crash:times=1;store.io:times=2",
                        faults.FAULTS_STATE_ENV: str(tmp_path / "crasher-faults"),
                    },
                ),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )

            # Hold the second survivor back until the crasher demonstrably
            # owns work (a running lease, or a completed point -- the hung
            # victim cannot finish anything, so all progress is the
            # crasher's).  Otherwise a fast sibling can drain the warm
            # cache before the crasher's interpreter finishes booting and
            # the armed crash never fires.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with ResultStore(store_path) as store:
                    crasher_busy = any(
                        record.lease_owner == "crasher"
                        for record in store.points(campaign, STATUS_RUNNING)
                    )
                    crasher_done = store.status_counts(campaign)[STATUS_DONE] > 0
                if crasher_busy or crasher_done:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("crasher never claimed a point")

            procs["steady"] = subprocess.Popen(
                _worker_argv(campaign, store_path, cache_dir, "steady"),
                env=_worker_env(src, store_path, {}),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )

            # SIGKILL the victim mid-point: no release, no cleanup.
            procs["victim"].kill()
            procs["victim"].wait(timeout=30.0)

            outputs = {}
            for name in ("crasher", "steady"):
                out, err = procs[name].communicate(timeout=180.0)
                outputs[name] = (procs[name].returncode, out.decode(), err.decode())
        finally:
            for proc in procs.values():
                proc.kill()

        for name, (code, out, err) in outputs.items():
            assert code == 0, f"{name} exited {code}: {out}\n{err}"

        with ResultStore(store_path) as store:
            records = store.points(campaign)
            results = store.results(campaign)

        # Every point terminal exactly once, none failed or orphaned.
        statuses = {record.status for record in records}
        assert statuses == {STATUS_DONE}
        assert len(records) == len(specs)

        # Exactly-once accounting: 13 first attempts, plus one re-attempt
        # for the crashed pool child and one for the adopted victim lease.
        attempts = {record.name: record.attempts for record in records}
        assert sum(attempts.values()) == len(specs) + 2, attempts
        assert all(1 <= count <= 3 for count in attempts.values()), attempts

        # The victim's hung point was adopted -- by a survivor, not by the
        # dead victim's ghost.
        victim_record = next(r for r in records if r.digest == victim_digest)
        assert victim_record.lease_owner is None  # cleared on mark_done
        assert victim_record.attempts >= 2

        # One survivor absorbed the crash: its summary says retried >= 1
        # and the fleet as a whole adopted exactly one lease.
        assert "adopted 1" in outputs["crasher"][1] + outputs["steady"][1]
        assert "retried 1" in outputs["crasher"][1]

        # Merged results are fingerprint-identical to the serial run.
        assert {
            result.scenario: result.fingerprint() for result in results
        } == reference
