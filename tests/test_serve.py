"""Contract and integration tests of the ``repro serve`` planning service.

The contract level exercises :class:`~repro.serve.ServeApp` directly (no
sockets): status codes, structured error bodies, admission accounting.
The integration level runs the real threaded HTTP server in-process and,
for the drain test, a real ``repro campaign worker`` subprocess sharing
the store over its ``sqlite:///`` URL -- proving the service's core
promise end to end: memo hits never touch the pipeline, cache misses are
drained to ``done`` by the ordinary worker fleet.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import faults
from repro.errors import ConfigurationError, ReproError
from repro.gis import RoofSpec
from repro.runner import ResultStore, scenario_content_digest
from repro.runner.store import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    STATUS_DONE,
    STATUS_PENDING,
)
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec
from repro.serve import (
    AdmissionController,
    BadRequestError,
    ServeApp,
    ServeClient,
    create_server,
    normalize_priority,
    normalize_scenario_document,
    open_serve_store,
    run_traffic,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def tiny_spec(name: str, solver: str = "greedy", n_modules: int = 2) -> ScenarioSpec:
    """A seconds-scale scenario with a roof unique to ``name``."""
    return ScenarioSpec(
        name=name,
        roof=RoofSpec(
            name=f"{name}-roof",
            width_m=6.0,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=n_modules,
        n_series=n_modules,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name=solver),
    )


def fake_result(spec: ScenarioSpec) -> dict:
    """A minimal result payload for rows completed without the pipeline."""
    return {"scenario": spec.name, "synthetic": True, "energy_kwh": 123.0}


def complete_point(store: ResultStore, campaign: str, spec: ScenarioSpec) -> str:
    """Enroll + mark one point ``done`` without running anything."""
    (record,) = store.enroll(campaign, [spec])
    store.mark_running(campaign, record.digest)
    store.mark_done(campaign, record.digest, fake_result(spec), wall_time_s=0.01)
    return record.digest


@pytest.fixture()
def make_service(tmp_path):
    """Factory for a live in-process serve stack (server thread + client)."""
    stacks = []

    def factory(max_queue: int = 8, campaign: str = "serve") -> SimpleNamespace:
        store_path = tmp_path / "store.sqlite"
        store = open_serve_store(store_path)
        app = ServeApp(store, campaign=campaign, max_queue=max_queue)
        server = create_server(app, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        stack = SimpleNamespace(
            app=app,
            store=store,
            store_path=store_path,
            base_url=f"http://{host}:{port}",
            client=ServeClient(f"http://{host}:{port}", timeout_s=15.0),
            server=server,
            thread=thread,
        )
        stacks.append(stack)
        return stack

    yield factory
    for stack in stacks:
        stack.server.shutdown()
        stack.thread.join(timeout=10.0)
        stack.server.server_close()
        stack.store.close()


def plan_body(spec: ScenarioSpec, priority: str = None) -> bytes:
    body = {"scenario": spec.to_dict()}
    if priority is not None:
        body["priority"] = priority
    return json.dumps(body).encode("utf-8")


# ---------------------------------------------------------------------------
# Contract level: ServeApp without sockets
# ---------------------------------------------------------------------------


class TestNormalization:
    def test_solver_string_shorthand_matches_dict_form(self):
        document = tiny_spec("n11n").to_dict()
        shorthand = dict(document)
        shorthand["solver"] = "greedy"
        explicit = normalize_scenario_document(document)
        short = normalize_scenario_document(shorthand)
        assert scenario_content_digest(explicit) == scenario_content_digest(short)

    def test_non_mapping_document_is_bad_request(self):
        for garbage in (None, 7, "roof", ["a"], True):
            with pytest.raises(BadRequestError):
                normalize_scenario_document(garbage)

    def test_solver_as_string_never_escapes_as_attribute_error(self):
        document = tiny_spec("attr").to_dict()
        document["solver"] = "greedy"
        spec = normalize_scenario_document(document)
        assert spec.solver.name == "greedy"

    def test_priority_default_and_validation(self):
        assert normalize_priority(None) == PRIORITY_INTERACTIVE
        assert normalize_priority("batch") == PRIORITY_BATCH
        with pytest.raises(BadRequestError):
            normalize_priority("urgent")
        with pytest.raises(BadRequestError):
            normalize_priority(3)


class TestAdmissionController:
    def test_rejects_at_max_queue_with_retry_after(self):
        controller = AdmissionController(max_queue=2, retry_after_s=1.5)
        assert controller.admit(1, PRIORITY_BATCH).admitted
        decision = controller.admit(2, PRIORITY_INTERACTIVE)
        assert not decision.admitted
        assert decision.retry_after_s == 1.5
        assert "full" in decision.reason
        stats = controller.stats()
        assert stats["admitted_by_priority"][PRIORITY_BATCH] == 1
        assert stats["rejected_by_priority"][PRIORITY_INTERACTIVE] == 1

    def test_hit_ratio(self):
        controller = AdmissionController(max_queue=4)
        assert controller.stats()["hit_ratio"] is None
        controller.record_hit()
        controller.record_hit()
        controller.admit(0, PRIORITY_INTERACTIVE)
        stats = controller.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_ratio"] == pytest.approx(2 / 3)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError):
            AdmissionController(max_queue=0)
        with pytest.raises(ReproError):
            AdmissionController(retry_after_s=0)


class TestServeAppContract:
    @pytest.fixture()
    def app(self, tmp_path):
        store = open_serve_store(tmp_path / "store.sqlite")
        yield ServeApp(store, max_queue=4)
        store.close()

    def test_malformed_json_body_is_structured_400(self, app):
        status, payload, _ = app.dispatch("POST", "/v1/plan", b"{not json")
        assert status == 400
        assert "error" in payload and "JSON" in payload["error"]
        assert app.admission.stats()["bad_requests"] == 1

    def test_missing_scenario_key_is_400(self, app):
        status, payload, _ = app.dispatch("POST", "/v1/plan", b'{"priority": "batch"}')
        assert status == 400
        assert "scenario" in payload["error"]

    def test_bad_priority_is_400(self, app):
        body = json.dumps(
            {"scenario": tiny_spec("p").to_dict(), "priority": "urgent"}
        ).encode()
        status, payload, _ = app.dispatch("POST", "/v1/plan", body)
        assert status == 400
        assert "priority" in payload["error"]

    def test_unknown_request_id_is_404(self, app):
        status, payload, _ = app.dispatch("GET", "/v1/requests/deadbeef")
        assert status == 404
        assert "error" in payload

    def test_unknown_path_404_and_wrong_method_405(self, app):
        assert app.dispatch("GET", "/v2/plan")[0] == 404
        status, _, headers = app.dispatch("GET", "/v1/plan")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert app.dispatch("POST", "/v1/stats")[0] == 405

    def test_miss_enqueues_with_digest_request_id(self, app):
        spec = tiny_spec("miss")
        status, payload, _ = app.dispatch("POST", "/v1/plan", plan_body(spec))
        assert status == 202
        assert payload["request_id"] == scenario_content_digest(spec)
        assert payload["status"] == STATUS_PENDING
        assert payload["priority"] == PRIORITY_INTERACTIVE
        assert payload["poll"] == f"/v1/requests/{payload['request_id']}"
        # Re-POST is idempotent: same id, no second enrollment, no 429.
        again_status, again, _ = app.dispatch("POST", "/v1/plan", plan_body(spec))
        assert again_status == 202
        assert again["request_id"] == payload["request_id"]
        assert app.store.queue_depth("serve") == 1

    def test_serve_campaign_name_must_be_non_empty(self, app):
        with pytest.raises(ConfigurationError):
            ServeApp(app.store, campaign="")


# ---------------------------------------------------------------------------
# Integration level: real HTTP server (and a real worker subprocess)
# ---------------------------------------------------------------------------


class TestWarmHit:
    def test_memo_hit_never_touches_the_pipeline(self, make_service, monkeypatch):
        """A done row (from *any* campaign) answers 200 with the pipeline
        booby-trapped: any stage execution would turn the response into a
        500 via the handler's failsafe, so the 200 + payload equality is
        proof the hit path is a pure store read."""
        service = make_service()
        spec = tiny_spec("warm")
        complete_point(service.store, "earlier-campaign", spec)

        def bomb(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("pipeline executed during a memo hit")

        monkeypatch.setattr("repro.runner.stages.run_scenario", bomb)
        monkeypatch.setattr("repro.runner.batch.execute_point", bomb)

        response = service.client.plan(spec.to_dict())
        assert response.status == 200
        assert response.payload["cached"] is True
        assert response.payload["status"] == STATUS_DONE
        assert response.payload["result"] == fake_result(spec)

        stats = service.client.stats().payload
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["hit_ratio"] == 1.0
        # Zero recompute side effects: nothing was enrolled in the serve
        # campaign, the queue never grew.
        assert stats["queue_depth"] == 0
        assert stats["status_counts"]["pending"] == 0

    def test_hit_is_representation_insensitive_over_http(self, make_service):
        service = make_service()
        spec = tiny_spec("shapes")
        complete_point(service.store, "earlier-campaign", spec)
        document = spec.to_dict()
        shorthand = dict(document)
        shorthand["solver"] = "greedy"  # string shorthand, same digest
        response = service.client.plan(shorthand)
        assert response.status == 200
        assert response.payload["cached"] is True


class TestMissAndWorkerDrain:
    def test_miss_202_then_real_worker_drains_to_done(self, make_service, tmp_path):
        service = make_service()
        spec = tiny_spec("drain")
        response = service.client.plan(spec.to_dict())
        assert response.status == 202
        request_id = response.payload["request_id"]
        assert request_id == scenario_content_digest(spec)
        assert response.payload["queue_depth"] == 1

        env = {
            **os.environ,
            "PYTHONPATH": str(SRC),
            "REPRO_STORE_PATH": str(service.store_path),
        }
        env.pop(faults.FAULTS_ENV, None)
        env.pop(faults.FAULTS_STATE_ENV, None)
        worker = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "worker",
                "serve",
                "--id",
                "drain-worker",
                "--serial",
                "--store",
                f"sqlite://{service.store_path}",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--poll",
                "0.2",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert worker.returncode == 0, worker.stderr

        final = service.client.wait_until_done(request_id, timeout_s=30.0)
        assert final.payload["status"] == STATUS_DONE
        assert final.payload["result"]["scenario"] == spec.name
        assert final.payload["attempts"] == 1

        # The drained answer is now a memo hit for everyone.
        again = service.client.plan(spec.to_dict())
        assert again.status == 200
        assert again.payload["cached"] is True
        stats = service.client.stats().payload
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["status_counts"]["done"] == 1


class TestAdmissionOverHTTP:
    def test_429_past_max_queue_with_retry_after_header(self, make_service):
        service = make_service(max_queue=1)
        first = service.client.plan(tiny_spec("q-one").to_dict())
        assert first.status == 202
        second = service.client.plan(tiny_spec("q-two").to_dict())
        assert second.status == 429
        assert second.retry_after_s is not None and second.retry_after_s > 0
        assert "error" in second.payload
        # The in-flight request itself is never 429ed on re-POST.
        again = service.client.plan(tiny_spec("q-one").to_dict())
        assert again.status == 202
        stats = service.client.stats().payload
        assert stats["rejected"] == 1
        assert stats["rejected_by_priority"][PRIORITY_INTERACTIVE] == 1

    def test_malformed_scenario_json_is_structured_400_over_http(self, make_service):
        service = make_service()
        raw = service.client.plan_raw(b"}{ definitely not json")
        assert raw.status == 400
        assert "error" in raw.payload
        bad_doc = service.client.plan({"roof": "not really a roof"})
        assert bad_doc.status == 400
        assert "error" in bad_doc.payload
        assert service.client.stats().payload["bad_requests"] == 2

    def test_healthz_reports_queue_depth(self, make_service):
        service = make_service(max_queue=5)
        health = service.client.healthz()
        assert health.status == 200
        assert health.payload["status"] == "ok"
        assert health.payload["queue_depth"] == 0
        assert health.payload["max_queue"] == 5
        service.client.plan(tiny_spec("h").to_dict())
        assert service.client.healthz().payload["queue_depth"] == 1


class TestPriorityTiers:
    def test_interactive_claimed_before_earlier_batch_points(self, make_service):
        """Batch points enrolled *first* must still lose the claim race to
        a later interactive serve request -- the priority column, threaded
        through claim_next_pending, is what keeps a waiting caller ahead
        of bulk backfill."""
        service = make_service()
        batch_specs = [tiny_spec("bulk-a"), tiny_spec("bulk-b")]
        service.store.enroll("serve", batch_specs, priority=PRIORITY_BATCH)

        response = service.client.plan(
            tiny_spec("urgent").to_dict(), priority="interactive"
        )
        assert response.status == 202
        interactive_digest = response.payload["request_id"]

        with ResultStore(service.store_path) as claimer:
            first = claimer.claim_next_pending("serve", owner="w1")
            assert first.point.digest == interactive_digest
            assert first.point.priority == PRIORITY_INTERACTIVE
            # Batch points then drain in enrollment order.
            second = claimer.claim_next_pending("serve", owner="w1")
            third = claimer.claim_next_pending("serve", owner="w1")
            assert [second.point.name, third.point.name] == ["bulk-a", "bulk-b"]

    def test_batch_priority_is_opt_in_via_body(self, make_service):
        service = make_service()
        response = service.client.plan(
            tiny_spec("bg").to_dict(), priority="batch"
        )
        assert response.status == 202
        assert response.payload["priority"] == PRIORITY_BATCH


class TestTrafficGenerator:
    def test_closed_loop_traffic_on_warm_catalog_is_all_hits(self, make_service):
        service = make_service()
        specs = [tiny_spec(f"t{i}") for i in range(3)]
        for spec in specs:
            complete_point(service.store, "warm", spec)
        report = run_traffic(
            service.base_url,
            [spec.to_dict() for spec in specs],
            n_clients=3,
            requests_per_client=5,
        )
        assert report.n_requests == 15
        assert report.status_counts == {200: 15}
        stats = report.latency_stats()
        assert stats.count == 15
        assert 0 < stats.p50 <= stats.p99
        as_dict = report.as_dict()
        assert as_dict["status_counts"] == {"200": 15}
        assert as_dict["latency_s"]["p99"] >= as_dict["latency_s"]["p50"]

    def test_traffic_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            run_traffic("http://127.0.0.1:1", [], n_clients=1)
        with pytest.raises(ConfigurationError):
            run_traffic("http://127.0.0.1:1", [{"a": 1}], n_clients=0)


class TestServeCli:
    def test_serve_starts_answers_and_exits_zero_on_sigterm(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        with open_serve_store(store_path) as store:
            complete_point(store, "warm", tiny_spec("cli-warm"))
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        env.pop("REPRO_SERVE_PORT", None)
        process = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store",
                str(store_path),
                "--max-queue",
                "3",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            base_url = banner.split("listening on ")[1].strip()
            client = ServeClient(base_url, timeout_s=15.0)
            assert client.healthz().payload["status"] == "ok"
            hit = client.plan(tiny_spec("cli-warm").to_dict())
            assert hit.status == 200 and hit.payload["cached"] is True
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            assert code == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
