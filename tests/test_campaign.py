"""Tests of the durable result store and fault-tolerant campaign runner.

Covers the store's row lifecycle, the crash/resume contract (a failed point
is recorded with its name + digest, and a resume recomputes *exactly* the
missing points), per-point retries, worker-death isolation, and the
bit-for-bit equivalence of the store-backed and in-memory paths over the
scenario catalog.
"""

from __future__ import annotations

import json
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError, ScenarioExecutionError
from repro.gis import RoofSpec
from repro.runner import (
    CampaignSummary,
    ResultStore,
    get_solver,
    register_solver,
    resolve_store,
    run_batch,
    scenario_content_digest,
)
from repro.runner.batch import write_results_jsonl
from repro.runner.store import (
    STATUS_DONE,
    STATUS_FAILED,
    STORE_SCHEMA_VERSION,
    default_store_path,
)
from repro.scenario import ScenarioSpec, SolverSpec, TimeSpec, builtin_scenarios
from repro.sweep import SweepAxis, SweepPlan, SweepResult, run_sweep


def tiny_spec(name: str, solver: str = "greedy", n_modules: int = 2) -> ScenarioSpec:
    """A seconds-scale scenario with a roof unique to ``name``."""
    return ScenarioSpec(
        name=name,
        roof=RoofSpec(
            name=f"{name}-roof",
            width_m=6.0,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=n_modules,
        n_series=n_modules,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name=solver),
    )


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "campaigns.sqlite") as handle:
        yield handle


@pytest.fixture()
def flaky_solver(tmp_path):
    """A registered solver that fails while the flag file exists.

    Returns the flag path; delete the file to make the solver succeed on
    the next attempt (the crash -> fix -> resume workflow).
    """
    flag = tmp_path / "flaky-fail-flag"
    flag.write_text("fail")

    def solver(problem, options, suitability):
        if flag.exists():
            raise RuntimeError("simulated solver crash")
        return get_solver("greedy")(problem, options, suitability)

    register_solver("flaky-test", solver, overwrite=True)
    return flag


# ---------------------------------------------------------------------------
# ResultStore row lifecycle
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_enroll_is_idempotent_and_ordered(self, store):
        specs = [tiny_spec("a"), tiny_spec("b"), tiny_spec("c")]
        first = store.enroll("camp", specs)
        assert [record.name for record in first] == ["a", "b", "c"]
        assert [record.position for record in first] == [0, 1, 2]
        assert all(record.status == "pending" for record in first)
        # Re-enrolling (the resume entry point) keeps rows untouched and
        # appends only genuinely new points.
        again = store.enroll("camp", specs + [tiny_spec("d")])
        assert [record.position for record in again] == [0, 1, 2, 3]
        assert store.status_counts("camp")["pending"] == 4

    def test_duplicate_digests_rejected(self, store):
        spec = tiny_spec("a")
        with pytest.raises(ConfigurationError):
            store.enroll("camp", [spec, spec])

    def test_transitions_and_accounting(self, store):
        spec = tiny_spec("a")
        (record,) = store.enroll("camp", [spec])
        digest = record.digest
        assert digest == scenario_content_digest(spec)

        store.mark_running("camp", digest)
        point = store.point("camp", digest)
        assert (point.status, point.attempts) == ("running", 1)

        store.mark_failed("camp", digest, "boom")
        point = store.point("camp", digest)
        assert (point.status, point.error) == (STATUS_FAILED, "boom")

        store.mark_running("camp", digest)
        assert store.point("camp", digest).attempts == 2
        result = run_batch([spec], parallel=False, use_cache=False).results[0]
        store.mark_done("camp", digest, result, wall_time_s=1.5)
        point = store.point("camp", digest)
        assert point.status == STATUS_DONE
        assert point.error is None
        assert point.wall_time_s == 1.5
        assert point.result().fingerprint() == result.fingerprint()
        # The spec is stored in full, so resume can rebuild the work list.
        assert point.spec().to_dict() == spec.to_dict()

    def test_reset_running_marks_interrupted(self, store):
        (record,) = store.enroll("camp", [tiny_spec("a")])
        store.mark_running("camp", record.digest)
        assert store.reset_running("camp") == 1
        point = store.point("camp", record.digest)
        assert point.status == STATUS_FAILED
        assert "interrupted" in point.error

    def test_unknown_point_and_campaigns_listing(self, store):
        with pytest.raises(ConfigurationError):
            store.point("camp", "no-such-digest")
        store.enroll("camp-b", [tiny_spec("b")])
        store.enroll("camp-a", [tiny_spec("a")])
        assert [name for name, _ in store.campaigns()] == ["camp-a", "camp-b"]

    def test_schema_version_guard(self, tmp_path):
        path = tmp_path / "campaigns.sqlite"
        ResultStore(path).close()
        import sqlite3

        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value='999' WHERE key='schema_version'")
        with pytest.raises(ConfigurationError):
            ResultStore(path)

    def test_v2_store_migrates_in_place_to_v3(self, tmp_path):
        """A schema-v2 store (pre-priority) opens cleanly: the migration
        adds the ``priority`` column in place, existing rows default to
        ``batch``, and claim ordering is exactly the pre-priority
        enrollment order."""
        path = tmp_path / "campaigns.sqlite"
        with ResultStore(path) as seeded:
            seeded.enroll("camp", [tiny_spec("old-a"), tiny_spec("old-b")])
        import sqlite3

        with sqlite3.connect(path) as conn:
            # Rewind to v2: drop the v3 column, stamp the old version.
            conn.execute("ALTER TABLE points DROP COLUMN priority")
            conn.execute("UPDATE meta SET value='2' WHERE key='schema_version'")
        with ResultStore(path) as migrated:
            assert [p.priority for p in migrated.points("camp")] == ["batch", "batch"]
            first = migrated.claim_next_pending("camp", owner="w1")
            second = migrated.claim_next_pending("camp", owner="w1")
            assert [first.point.name, second.point.name] == ["old-a", "old-b"]
        with sqlite3.connect(path) as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            assert row[0] == str(STORE_SCHEMA_VERSION)

    def test_interrupted_migration_is_idempotent(self, tmp_path):
        """Version stamp rewound but the column already added (a crash
        between ALTER and UPDATE): reopening must tolerate the duplicate
        column instead of failing the ALTER."""
        path = tmp_path / "campaigns.sqlite"
        with ResultStore(path) as seeded:
            seeded.enroll("camp", [tiny_spec("survivor")])
        import sqlite3

        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value='2' WHERE key='schema_version'")
        with ResultStore(path) as migrated:
            assert [p.name for p in migrated.points("camp")] == ["survivor"]

    def test_equal_priority_claim_order_matches_pre_priority_order(self, store):
        """When every row shares one priority tier the claim order is the
        plain enrollment ``position`` order -- the exact pre-v3 behaviour,
        pinned so the priority CASE never perturbs legacy campaigns."""
        names = [f"p{i}" for i in range(5)]
        store.enroll("camp", [tiny_spec(name) for name in names])
        claimed = []
        while True:
            got = store.claim_next_pending("camp", owner="w1")
            if got is None:
                break
            claimed.append(got.point.name)
        assert claimed == names

    def test_enroll_priority_validated_and_kept_on_reenroll(self, store):
        from repro.runner import PRIORITY_INTERACTIVE

        spec = tiny_spec("tiered")
        with pytest.raises(ConfigurationError):
            store.enroll("camp", [spec], priority="urgent")
        (record,) = store.enroll("camp", [spec], priority=PRIORITY_INTERACTIVE)
        assert record.priority == PRIORITY_INTERACTIVE
        # Idempotent re-enrollment (the resume path) keeps the stored tier.
        (again,) = store.enroll("camp", [spec])
        assert again.priority == PRIORITY_INTERACTIVE

    def test_default_store_path_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "custom.sqlite"))
        assert default_store_path() == tmp_path / "custom.sqlite"

    def test_resolve_store(self, tmp_path, store):
        assert resolve_store(None) is None
        assert resolve_store("none") is None
        assert resolve_store("NONE") is None
        assert resolve_store(store) is store
        opened = resolve_store(tmp_path / "other.sqlite")
        assert isinstance(opened, ResultStore)
        opened.close()


# ---------------------------------------------------------------------------
# Campaign execution: skip, fail, retry, resume
# ---------------------------------------------------------------------------


class TestCampaignRun:
    def test_worker_error_wrapped_with_point_identity_in_memory(self, tmp_path):
        bad = replace(tiny_spec("too-big"), n_modules=500, n_series=10)
        with pytest.raises(ScenarioExecutionError) as excinfo:
            run_batch([bad], parallel=False, use_cache=False)
        message = str(excinfo.value)
        assert "too-big" in message
        assert scenario_content_digest(bad)[:12] in message
        assert excinfo.value.scenario == "too-big"

    def test_worker_error_wrapped_in_parallel_worker(self, tmp_path):
        # The failure happens inside a worker process; the pool must survive
        # and the error must name the failing point, not a bare traceback.
        good = tiny_spec("good")
        bad = replace(tiny_spec("too-big"), n_modules=500, n_series=10)
        with pytest.raises(ScenarioExecutionError) as excinfo:
            run_batch([good, bad], cache=tmp_path / "cache", jobs=2)
        assert "too-big" in str(excinfo.value)

    def test_failure_recorded_then_resume_computes_exactly_missing(
        self, store, flaky_solver
    ):
        specs = [
            tiny_spec("point-a"),
            replace(tiny_spec("point-b"), solver=SolverSpec(name="flaky-test")),
            tiny_spec("point-c"),
        ]
        digest = scenario_content_digest(specs[1])

        batch = run_batch(
            specs, store=store, campaign="camp", parallel=False, use_cache=False
        )
        summary = batch.campaign
        assert (summary.done, summary.computed, summary.failed) == (2, 2, 1)
        assert summary.skipped == 0
        assert [result.scenario for result in batch.results] == ["point-a", "point-c"]

        # The store has the failure row, attributed to its point.
        (failed,) = store.points("camp", STATUS_FAILED)
        assert failed.name == "point-b"
        assert failed.digest == digest
        assert failed.attempts == 1
        assert "point-b" in failed.error and digest[:12] in failed.error
        assert "simulated solver crash" in failed.error

        # Fix the cause and resume: exactly n - k = 1 point recomputes.
        flaky_solver.unlink()
        resumed = run_batch(
            specs, store=store, campaign="camp", parallel=False, use_cache=False
        )
        summary = resumed.campaign
        assert (summary.done, summary.computed, summary.skipped) == (3, 1, 2)
        assert summary.failed == 0
        # With the cache disabled every recomputation is visible: the resume
        # recomputed each pipeline stage exactly once -- the failed point's
        # stages and nothing else.
        recomputed = resumed.results[1]
        assert recomputed.scenario == "point-b"
        assert summary.stage_recomputes == {
            stage: 1 for stage in recomputed.stage_cached
        }
        assert summary.stage_hits == {stage: 0 for stage in recomputed.stage_cached}
        assert [result.scenario for result in resumed.results] == [
            "point-a",
            "point-b",
            "point-c",
        ]

        # The resumed campaign's results match a fresh in-memory run.
        fresh = run_batch(specs, parallel=False, use_cache=False)
        assert [r.fingerprint() for r in resumed.results] == [
            r.fingerprint() for r in fresh.results
        ]

    def test_retries_within_one_run(self, store, flaky_solver):
        spec = replace(tiny_spec("retry-me"), solver=SolverSpec(name="retry-probe"))

        attempts = []

        def solver(problem, options, suitability):
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise RuntimeError(f"transient failure #{len(attempts)}")
            return get_solver("greedy")(problem, options, suitability)

        register_solver("retry-probe", solver, overwrite=True)
        batch = run_batch(
            [spec],
            store=store,
            campaign="camp",
            parallel=False,
            use_cache=False,
            retries=2,
        )
        summary = batch.campaign
        assert (summary.done, summary.failed, summary.retried) == (1, 0, 2)
        assert store.point("camp", scenario_content_digest(spec)).attempts == 3

    def test_retry_budget_exhausted(self, store, flaky_solver):
        spec = replace(tiny_spec("always-bad"), solver=SolverSpec(name="flaky-test"))
        batch = run_batch(
            [spec],
            store=store,
            campaign="camp",
            parallel=False,
            use_cache=False,
            retries=2,
        )
        summary = batch.campaign
        assert (summary.done, summary.failed, summary.retried) == (0, 1, 2)
        assert store.point("camp", scenario_content_digest(spec)).attempts == 3

    def test_worker_death_fails_only_its_point(self, store, monkeypatch):
        """A dying worker process (BrokenProcessPool) is isolated and recovered."""
        from repro.runner import batch as batch_module

        killed = []

        def make_executor(kill_limit):
            class SuddenDeathExecutor:
                """In-process stand-in whose 'worker' dies for one point."""

                def __init__(self, max_workers, initializer=None):
                    self.max_workers = max_workers

                def submit(self, fn, payload):
                    future = Future()
                    name = payload[0]["name"]
                    if name == "victim" and len(killed) < kill_limit:
                        killed.append(name)
                        future.set_exception(BrokenProcessPool("simulated OOM kill"))
                    else:
                        future.set_result(fn(payload))
                    return future

                def shutdown(self, wait=True, cancel_futures=False):
                    pass

            return SuddenDeathExecutor

        specs = [tiny_spec("survivor"), tiny_spec("victim")]

        # A transient death: the casualty is re-enqueued on the rebuilt pool
        # WITHOUT consuming the error-retry budget (retries=0), because most
        # pool-death casualties are innocent bystanders of the culprit.
        monkeypatch.setattr(batch_module, "ProcessPoolExecutor", make_executor(1))
        batch = run_batch(
            specs, store=store, campaign="transient", jobs=2, use_cache=False
        )
        assert (batch.campaign.done, batch.campaign.failed) == (2, 0)
        assert batch.campaign.retried == 1
        victim = next(
            record for record in store.points("transient") if record.name == "victim"
        )
        assert victim.attempts == 2

        # A point that deterministically kills its worker exhausts the
        # bounded free passes and fails -- without looping forever and
        # without taking the survivor down with it.
        killed.clear()
        monkeypatch.setattr(batch_module, "ProcessPoolExecutor", make_executor(99))
        batch = run_batch(
            specs, store=store, campaign="persistent", jobs=2, use_cache=False
        )
        assert (batch.campaign.done, batch.campaign.failed) == (1, 1)
        (failed,) = store.points("persistent", STATUS_FAILED)
        assert failed.name == "victim"
        assert "worker process died" in failed.error

    def test_interrupted_running_rows_recovered_on_resume(self, store):
        spec = tiny_spec("stuck")
        (record,) = store.enroll("camp", [spec])
        store.mark_running("camp", record.digest)  # driver died mid-point
        batch = run_batch(
            [spec], store=store, campaign="camp", parallel=False, use_cache=False
        )
        assert (batch.campaign.done, batch.campaign.failed) == (1, 0)
        assert store.point("camp", record.digest).attempts == 2


# ---------------------------------------------------------------------------
# Equivalence with the in-memory path + byte-compatible export
# ---------------------------------------------------------------------------


class TestStoreEquivalence:
    def test_store_backed_matches_in_memory_over_catalog(self, tmp_path):
        specs = list(builtin_scenarios().values())
        cache = tmp_path / "cache"
        memory = run_batch(specs, cache=cache, parallel=False)
        stored = run_batch(
            specs,
            cache=cache,
            parallel=False,
            store=tmp_path / "campaigns.sqlite",
            campaign="catalog",
        )
        assert [r.fingerprint() for r in stored.results] == [
            r.fingerprint() for r in memory.results
        ]
        # A warm re-run reloads every point from the store, identically.
        warm = run_batch(
            specs,
            cache=cache,
            parallel=False,
            store=tmp_path / "campaigns.sqlite",
            campaign="catalog",
        )
        assert warm.campaign.computed == 0
        assert warm.campaign.skipped == len(specs)
        assert [r.fingerprint() for r in warm.results] == [
            r.fingerprint() for r in memory.results
        ]

    def test_export_is_byte_compatible_with_jsonl_writer(self, tmp_path):
        specs = [tiny_spec("a"), tiny_spec("b")]
        store_path = tmp_path / "campaigns.sqlite"
        batch = run_batch(
            specs,
            store=store_path,
            campaign="camp",
            parallel=False,
            use_cache=False,
            results_path=tmp_path / "direct.jsonl",
        )
        reference = tmp_path / "reference.jsonl"
        write_results_jsonl(batch.results, reference)
        exported = tmp_path / "exported.jsonl"
        with ResultStore(store_path) as store:
            assert store.export("camp", exported) == 2
        assert exported.read_bytes() == reference.read_bytes()
        assert exported.read_bytes() == (tmp_path / "direct.jsonl").read_bytes()
        records = [json.loads(line) for line in exported.read_text().splitlines()]
        assert [record["scenario"] for record in records] == ["a", "b"]


# ---------------------------------------------------------------------------
# Sweeps through the store
# ---------------------------------------------------------------------------


class TestSweepCampaign:
    @pytest.fixture()
    def plan(self):
        return SweepPlan(
            name="store-sweep",
            base=tiny_spec("base"),
            axes=(SweepAxis("n_modules", (2, 4)),),
        )

    def test_sweep_store_matches_in_memory_and_resumes_noop(self, tmp_path, plan):
        cache = tmp_path / "cache"
        memory = run_sweep(plan, cache=cache, parallel=False)
        stored = run_sweep(
            plan, cache=cache, parallel=False, store=tmp_path / "campaigns.sqlite"
        )
        assert stored.campaign is not None
        assert stored.campaign.campaign == plan.campaign_name == "sweep:store-sweep"
        assert [p.result.fingerprint() for p in stored.points] == [
            p.result.fingerprint() for p in memory.points
        ]
        # Round-trip through JSON keeps the campaign summary.
        restored = SweepResult.from_dict(stored.to_dict())
        assert restored.campaign.as_dict() == stored.campaign.as_dict()

        warm = run_sweep(
            plan, cache=cache, parallel=False, store=tmp_path / "campaigns.sqlite"
        )
        assert (warm.campaign.computed, warm.campaign.skipped) == (0, plan.n_points)
        assert [p.result.fingerprint() for p in warm.points] == [
            p.result.fingerprint() for p in memory.points
        ]

    def test_sweep_with_failed_points_raises_but_keeps_state(
        self, tmp_path, plan, flaky_solver
    ):
        failing = SweepPlan(
            name="flaky-sweep",
            base=replace(tiny_spec("base"), solver=SolverSpec(name="flaky-test")),
            axes=(SweepAxis("n_modules", (2, 4)),),
        )
        store_path = tmp_path / "campaigns.sqlite"
        with pytest.raises(ScenarioExecutionError, match="flaky-sweep"):
            run_sweep(failing, parallel=False, use_cache=False, store=store_path)
        with ResultStore(store_path) as store:
            counts = store.status_counts(failing.campaign_name)
        assert counts["failed"] == 2

        # Fixing the cause and re-running the same sweep resumes to completion.
        flaky_solver.unlink()
        resumed = run_sweep(failing, parallel=False, use_cache=False, store=store_path)
        assert (resumed.campaign.computed, resumed.campaign.failed) == (2, 0)

    def test_campaign_summary_round_trip(self):
        summary = CampaignSummary(
            campaign="c",
            n_points=3,
            done=2,
            computed=1,
            skipped=1,
            failed=1,
            retried=2,
            stage_hits={"solar": 1},
            stage_recomputes={"solar": 0},
        )
        assert CampaignSummary.from_dict(summary.as_dict()) == summary
