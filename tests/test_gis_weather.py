"""Unit tests for the GIS substrate (DSM, scenes, gridding, suitable area,
roof-plane fitting) and the synthetic weather generator."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import GISError, WeatherError
from repro.geometry import Polygon
from repro.gis import (
    DigitalSurfaceModel,
    ObstacleFootprint,
    RoofSpec,
    SuitableAreaConfig,
    apply_suitable_area,
    build_roof_scene,
    chimney,
    compute_suitable_area,
    dormer,
    fit_roof_plane,
    make_roof_grid,
    obstacle_mask_from_plane,
    pipe_rack,
    random_obstacle_set,
    scattered_vents,
    simple_residential_roof,
    vent,
)
from repro.solar import TimeGrid
from repro.weather import (
    ClearnessModel,
    StationMetadata,
    SyntheticWeatherConfig,
    TemperatureModel,
    WeatherSeries,
    generate_clearsky_index,
    generate_clearsky_weather,
    generate_temperature,
    generate_weather,
    scale_weather,
)


class TestDSM:
    def test_flat_constructor(self):
        dsm = DigitalSurfaceModel.flat(4.0, 2.0, pitch=0.5, elevation=3.0)
        assert dsm.shape == (4, 8)
        assert float(dsm.data.min()) == 3.0

    def test_from_array_rejects_nan(self):
        data = np.zeros((3, 3))
        data[1, 1] = np.nan
        with pytest.raises(GISError):
            DigitalSurfaceModel.from_array(data, pitch=1.0)

    def test_slope_and_aspect_of_inclined_plane(self):
        # Elevation rises northwards: a south-facing slope.
        rows = np.arange(10, dtype=float)
        elevation = np.tile(rows[:, None], (1, 10)) * 0.5
        dsm = DigitalSurfaceModel.from_array(elevation, pitch=1.0)
        slope = dsm.slope_deg()
        aspect = dsm.aspect_deg()
        assert np.allclose(slope[2:-2, 2:-2], np.degrees(np.arctan(0.5)), atol=0.5)
        assert np.allclose(np.abs(aspect[2:-2, 2:-2]), 0.0, atol=1.0)

    def test_prominence_detects_bump(self):
        elevation = np.zeros((11, 11))
        elevation[5, 5] = 2.0
        dsm = DigitalSurfaceModel.from_array(elevation, pitch=0.5)
        prominence = dsm.prominence(neighbourhood_cells=2)
        assert prominence[5, 5] == pytest.approx(2.0)
        assert abs(prominence[0, 0]) < 1e-9

    def test_region_statistics(self):
        dsm = DigitalSurfaceModel.flat(4.0, 4.0, pitch=0.5, elevation=2.0)
        stats = dsm.region_statistics(Polygon.rectangle(0.5, 0.5, 2.5, 2.5))
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["count"] > 0

    def test_region_statistics_outside(self):
        dsm = DigitalSurfaceModel.flat(2.0, 2.0, pitch=0.5)
        with pytest.raises(GISError):
            dsm.region_statistics(Polygon.rectangle(10, 10, 11, 11))

    def test_obstacle_footprint_validation(self):
        with pytest.raises(GISError):
            ObstacleFootprint("bad", Polygon.rectangle(0, 0, 1, 1), height_m=0.0)


class TestSyntheticScene:
    def test_scene_contains_roof_at_expected_heights(self, small_scene, small_roof_spec):
        dsm = small_scene.dsm
        eave = small_roof_spec.eave_height_m
        assert float(dsm.data.max()) >= eave
        assert float(dsm.data.min()) == pytest.approx(0.0)

    def test_obstacles_raise_dsm_above_roof(self, small_scene):
        chimney_obstacle = small_scene.obstacles[0]
        centre_roof = chimney_obstacle.polygon.centroid()
        world = small_scene.frame.roof_to_world(centre_roof)
        surface = small_scene.dsm.elevation_at(world.horizontal())
        assert surface > world.z + 0.5 * chimney_obstacle.height_m

    def test_roof_polygon_matches_spec(self, small_scene, small_roof_spec):
        assert small_scene.roof_polygon.area() == pytest.approx(
            small_roof_spec.width_m * small_roof_spec.depth_m
        )

    def test_invalid_spec_rejected(self):
        with pytest.raises(GISError):
            RoofSpec(name="bad", width_m=-1.0, depth_m=5.0, tilt_deg=20.0, azimuth_deg=0.0)
        with pytest.raises(GISError):
            RoofSpec(name="bad", width_m=5.0, depth_m=5.0, tilt_deg=95.0, azimuth_deg=0.0)
        with pytest.raises(GISError):
            RoofSpec(
                name="bad", width_m=5.0, depth_m=5.0, tilt_deg=20.0, azimuth_deg=0.0,
                surface_roughness_m=-0.1,
            )

    def test_roughness_changes_surface(self, small_roof_spec):
        smooth_spec = dataclasses.replace(small_roof_spec, surface_roughness_m=0.0)
        rough_spec = dataclasses.replace(small_roof_spec, surface_roughness_m=0.2)
        smooth = build_roof_scene(smooth_spec, dsm_pitch=0.4)
        rough = build_roof_scene(rough_spec, dsm_pitch=0.4)
        assert float(np.std(rough.dsm.data - smooth.dsm.data)) > 0.01

    def test_obstacle_factories(self):
        assert chimney(1, 1).name == "chimney"
        assert dormer(1, 1).name == "dormer"
        assert vent(1, 1).name == "vent"
        assert pipe_rack(0, 0).polygon.area() == pytest.approx(16.0)

    def test_scattered_vents_count_and_bounds(self):
        vents = scattered_vents(20.0, 8.0, n_vents=10, seed=3)
        assert len(vents) == 10
        for obstacle in vents:
            centroid = obstacle.polygon.centroid()
            assert 0.0 <= centroid.x <= 20.0
            assert 0.0 <= centroid.y <= 8.0

    def test_scattered_vents_deterministic(self):
        first = scattered_vents(20.0, 8.0, 6, seed=9)
        second = scattered_vents(20.0, 8.0, 6, seed=9)
        assert [o.polygon.centroid() for o in first] == [o.polygon.centroid() for o in second]

    def test_random_obstacle_set(self):
        obstacles = random_obstacle_set(10.0, 6.0, 5, seed=1)
        assert len(obstacles) == 5

    def test_simple_residential_roof(self):
        spec = simple_residential_roof(n_obstacles=3, seed=2)
        assert len(spec.obstacles) == 3
        scene = build_roof_scene(spec, dsm_pitch=0.5)
        assert scene.name == spec.name


class TestGridding:
    def test_grid_dimensions(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        assert grid.n_cols == 60  # 12 m / 0.2 m
        assert grid.n_rows == 30  # 6 m / 0.2 m
        assert grid.n_cells == 1800

    def test_invalid_pitch(self, small_scene):
        with pytest.raises(GISError):
            make_roof_grid(small_scene, pitch=0.0)

    def test_cell_center_world_on_roof_plane(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        world = grid.cell_center_world(0, 0)
        assert world.z >= small_scene.spec.eave_height_m - 1e-6

    def test_dsm_indices_within_bounds(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        rows, cols = grid.dsm_indices(small_scene.dsm)
        assert rows.shape == grid.shape
        assert rows.min() >= 0 and rows.max() < small_scene.dsm.shape[0]
        assert cols.min() >= 0 and cols.max() < small_scene.dsm.shape[1]

    def test_invalidate_cells(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        updated = grid.invalidate_cells(np.array([[0, 0], [1, 1]]))
        assert not updated.is_valid(0, 0)
        assert grid.is_valid(0, 0)  # original untouched

    def test_valid_cells_listing(self, small_grid):
        cells = small_grid.valid_cells()
        assert cells.shape == (small_grid.n_valid, 2)
        assert np.all(small_grid.valid_mask[cells[:, 0], cells[:, 1]])


class TestSuitableArea:
    def test_obstacles_and_setback_reduce_valid_cells(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        result = compute_suitable_area(
            grid, small_scene.obstacles, SuitableAreaConfig(edge_setback_m=0.4)
        )
        assert result.n_valid < grid.n_cells
        assert result.excluded_by_obstacles > 0
        assert result.excluded_by_setback > 0
        assert 0.0 < result.valid_fraction < 1.0

    def test_no_obstacles_no_setback_keeps_everything(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        result = compute_suitable_area(grid, [], SuitableAreaConfig(edge_setback_m=0.0))
        assert result.n_valid == grid.n_cells

    def test_obstacle_cells_are_invalid(self, small_scene, small_grid):
        chimney_obstacle = small_scene.obstacles[0]
        centroid = chimney_obstacle.polygon.centroid()
        row = int(centroid.y / small_grid.pitch)
        col = int(centroid.x / small_grid.pitch)
        assert not small_grid.valid_mask[row, col]

    def test_shading_exclusion_requires_map(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        config = SuitableAreaConfig(max_shaded_fraction=0.5)
        with pytest.raises(GISError):
            compute_suitable_area(grid, [], config)

    def test_shading_exclusion_applies(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        shaded = np.zeros(grid.shape)
        shaded[:, :10] = 0.9
        config = SuitableAreaConfig(edge_setback_m=0.0, max_shaded_fraction=0.5)
        result = compute_suitable_area(grid, [], config, shaded_fraction=shaded)
        assert result.excluded_by_shading == 10 * grid.n_rows

    def test_apply_suitable_area_returns_new_grid(self, small_scene):
        grid = make_roof_grid(small_scene, pitch=0.2)
        result = compute_suitable_area(grid, small_scene.obstacles)
        restricted = apply_suitable_area(grid, result)
        assert restricted.n_valid == result.n_valid


class TestRoofPlaneFitting:
    def test_fit_recovers_tilt_and_azimuth(self, small_scene, small_roof_spec):
        region = Polygon(
            [
                small_scene.frame.roof_to_world(vertex).horizontal()
                for vertex in small_scene.roof_polygon.vertices
            ]
        )
        plane = fit_roof_plane(small_scene.dsm, region)
        assert plane.tilt_deg == pytest.approx(small_roof_spec.tilt_deg, abs=3.0)
        assert plane.azimuth_deg == pytest.approx(small_roof_spec.azimuth_deg, abs=12.0)

    def test_obstacle_mask_finds_chimney(self, small_scene):
        region = Polygon(
            [
                small_scene.frame.roof_to_world(vertex).horizontal()
                for vertex in small_scene.roof_polygon.vertices
            ]
        )
        plane = fit_roof_plane(small_scene.dsm, region)
        mask = obstacle_mask_from_plane(small_scene.dsm, region, plane, threshold_m=0.5)
        assert mask.any()

    def test_fit_requires_cells(self):
        dsm = DigitalSurfaceModel.flat(2.0, 2.0, pitch=0.5)
        with pytest.raises(GISError):
            fit_roof_plane(dsm, Polygon.rectangle(10, 10, 11, 11))


class TestWeather:
    def test_station_validation(self):
        with pytest.raises(WeatherError):
            StationMetadata(name="x", latitude_deg=100.0, longitude_deg=0.0)

    def test_series_shape_validation(self, small_time_grid):
        station = StationMetadata("s", 45.0, 7.7)
        with pytest.raises(WeatherError):
            WeatherSeries(
                time_grid=small_time_grid,
                ghi=np.zeros(3),
                temperature=np.zeros(small_time_grid.n_samples),
                station=station,
            )

    def test_negative_ghi_rejected(self, small_time_grid):
        station = StationMetadata("s", 45.0, 7.7)
        ghi = np.zeros(small_time_grid.n_samples)
        ghi[0] = -5.0
        with pytest.raises(WeatherError):
            WeatherSeries(small_time_grid, ghi, np.zeros(small_time_grid.n_samples), station)

    def test_generated_weather_is_deterministic(self, small_time_grid):
        first = generate_weather(small_time_grid, SyntheticWeatherConfig(seed=4))
        second = generate_weather(small_time_grid, SyntheticWeatherConfig(seed=4))
        assert np.array_equal(first.ghi, second.ghi)
        assert np.array_equal(first.temperature, second.temperature)

    def test_different_seeds_differ(self, small_time_grid):
        first = generate_weather(small_time_grid, SyntheticWeatherConfig(seed=1))
        second = generate_weather(small_time_grid, SyntheticWeatherConfig(seed=2))
        assert not np.array_equal(first.ghi, second.ghi)

    def test_ghi_zero_at_night_positive_at_noon(self, small_weather, small_time_grid):
        night = small_time_grid.hours < 3.0
        noon = np.abs(small_time_grid.hours - 12.0) <= 1.5
        assert float(small_weather.ghi[night].max()) == pytest.approx(0.0)
        assert float(small_weather.ghi[noon].mean()) > 50.0

    def test_annual_ghi_plausible_for_turin(self):
        grid = TimeGrid(step_minutes=60.0, day_stride=7)
        weather = generate_weather(grid, SyntheticWeatherConfig(seed=7))
        annual = weather.annual_ghi_kwh_per_m2()
        assert 800.0 < annual < 1800.0

    def test_clearsky_weather_upper_bounds_cloudy(self):
        grid = TimeGrid(step_minutes=120.0, day_stride=30)
        config = SyntheticWeatherConfig(seed=5)
        cloudy = generate_weather(grid, config)
        clear = generate_clearsky_weather(grid, config)
        assert clear.annual_ghi_kwh_per_m2() >= cloudy.annual_ghi_kwh_per_m2() * 0.95

    def test_summer_warmer_than_winter(self, small_weather, small_time_grid):
        summer = (small_time_grid.days_of_year > 150) & (small_time_grid.days_of_year < 240)
        winter = (small_time_grid.days_of_year < 60) | (small_time_grid.days_of_year > 330)
        summer_mean = small_weather.temperature[summer].mean()
        winter_mean = small_weather.temperature[winter].mean()
        assert summer_mean > winter_mean + 5

    def test_clearsky_index_bounds(self, small_time_grid):
        index = generate_clearsky_index(small_time_grid, seed=0)
        assert float(index.min()) >= 0.02
        assert float(index.max()) <= 1.1

    def test_clearness_model_validation(self):
        with pytest.raises(WeatherError):
            ClearnessModel(clear_mean=1.5)
        with pytest.raises(WeatherError):
            ClearnessModel(persistence=1.0)

    def test_temperature_model_validation(self):
        with pytest.raises(WeatherError):
            TemperatureModel(seasonal_amplitude_c=-1.0)

    def test_temperature_clearness_coupling(self, small_time_grid):
        clear = generate_temperature(
            small_time_grid, clearsky_index=np.ones(small_time_grid.n_samples), seed=0
        )
        overcast = generate_temperature(
            small_time_grid, clearsky_index=np.full(small_time_grid.n_samples, 0.2), seed=0
        )
        assert clear.mean() > overcast.mean()

    def test_scale_weather(self, small_weather):
        doubled = scale_weather(small_weather, 2.0)
        assert np.allclose(doubled.ghi, small_weather.ghi * 2.0)
        with pytest.raises(WeatherError):
            scale_weather(small_weather, -1.0)

    def test_summary_keys(self, small_weather):
        summary = small_weather.summary()
        assert {"station", "annual_ghi_kwh_m2", "mean_temperature_c"} <= set(summary)
