"""Tests of the declarative sweep engine and the report generator.

Covers the PR's acceptance criteria end to end:

* dotted-path axis overrides on :class:`ScenarioSpec`, including JSON
  round-trip stability of overridden specs;
* grid/zip plan expansion, plan (de)serialisation, deterministic naming;
* sweep execution through the cached batch runner, with stage-cache reuse
  accounting: an ``n_modules x solver`` sweep computes its solar field
  once, a warm re-run recomputes nothing, and a warm re-run of the whole
  built-in catalog reports zero solar recomputations;
* the ``table1`` report preset matching the legacy ``run_table1`` driver
  row-for-row, with byte-identical regeneration;
* the ``sweep`` / ``report`` CLI subcommands.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import (
    CaseStudyConfig,
    Table1Config,
    run_table1,
    run_table1_sweep,
    table1_sweep_plan,
)
from repro.gis import RoofSpec, chimney
from repro.pv.datasheet import get_datasheet
from repro.runner import run_batch
from repro.scenario import ScenarioSpec, SolarSpec, TimeSpec, builtin_scenarios
from repro.scenario.docgen import render_scenarios_markdown
from repro.scenario.spec import apply_scenario_overrides
from repro.solar import SolarSimulationConfig
from repro.sweep import SweepAxis, SweepPlan, SweepResult, run_sweep
from repro.sweep.report import (
    available_presets,
    generate_report,
    render_csv,
    render_markdown_table,
    sweep_report,
    table1_report,
)


@pytest.fixture(scope="module")
def base_scenario() -> ScenarioSpec:
    """A small, fast scenario used as the sweep base."""
    roof = RoofSpec(
        name="sweep-test-roof",
        width_m=8.0,
        depth_m=5.0,
        tilt_deg=28.0,
        azimuth_deg=0.0,
        eave_height_m=5.0,
        edge_setback_m=0.3,
        obstacles=(chimney(2.0, 3.5, side_m=0.8, height_m=1.5),),
    )
    return ScenarioSpec(
        name="sweep-test",
        roof=roof,
        n_modules=4,
        n_series=2,
        grid_pitch=0.4,
        dsm_pitch=0.5,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solar=SolarSpec(n_horizon_sectors=16, horizon_max_distance_m=30.0),
    )


@pytest.fixture(scope="module")
def tiny_table1_config() -> Table1Config:
    """A reduced Table I configuration shared by the equivalence tests."""
    return Table1Config(
        module_counts=(6, 8),
        series_length=2,
        case_study=CaseStudyConfig(
            scale=0.35,
            grid_pitch=0.2,
            dsm_pitch=0.5,
            time_step_minutes=120.0,
            day_stride=30,
            solar=SolarSimulationConfig(
                n_horizon_sectors=16, horizon_max_distance_m=30.0
            ),
        ),
    )


# ---------------------------------------------------------------------------
# Axis overrides
# ---------------------------------------------------------------------------


class TestOverrides:
    def test_scalar_and_nested_paths(self, base_scenario):
        point = base_scenario.with_overrides(
            {"n_modules": 6, "n_series": 3, "weather.seed": 9, "weather.latitude_deg": 52.5}
        )
        assert point.n_modules == 6
        assert point.weather.seed == 9
        assert point.weather.latitude_deg == 52.5

    def test_base_is_untouched(self, base_scenario):
        before = base_scenario.to_dict()
        base_scenario.with_overrides({"n_modules": 6, "n_series": 3})
        assert base_scenario.to_dict() == before

    def test_solver_string_shorthand(self, base_scenario):
        point = base_scenario.with_overrides({"solver": "traditional"})
        assert point.solver.name == "traditional"
        assert dict(point.solver.options) == {}

    def test_solver_options_accept_new_keys(self, base_scenario):
        point = base_scenario.with_overrides({"solver.options.tie_tolerance": 0.05})
        assert point.solver.options["tie_tolerance"] == 0.05

    def test_module_field_override_expands_named_datasheet(self, base_scenario):
        point = base_scenario.with_overrides({"module.gamma_p_per_k": -0.001})
        sheet = point.datasheet()
        assert sheet.gamma_p_per_k == -0.001
        reference = get_datasheet("pv-mf165eb3")
        assert sheet.p_max_ref == reference.p_max_ref

    def test_roof_document_override(self, base_scenario):
        other = dict(base_scenario.to_dict()["roof"], name="other-roof", width_m=10.0)
        point = base_scenario.with_overrides({"roof": other})
        assert point.roof.name == "other-roof"
        assert point.roof.width_m == 10.0

    def test_rename(self, base_scenario):
        assert base_scenario.with_overrides({}, name="renamed").name == "renamed"

    def test_unknown_key_rejected(self, base_scenario):
        with pytest.raises(ConfigurationError, match="unknown key"):
            base_scenario.with_overrides({"weather.sed": 1})
        with pytest.raises(ConfigurationError, match="unknown key"):
            base_scenario.with_overrides({"n_modles": 4})

    def test_non_mapping_intermediate_rejected(self, base_scenario):
        with pytest.raises(ConfigurationError, match="mapping"):
            base_scenario.with_overrides({"n_modules.sub": 1})

    def test_apply_is_pure(self, base_scenario):
        data = base_scenario.to_dict()
        snapshot = json.loads(json.dumps(data))
        apply_scenario_overrides(data, {"weather.seed": 123})
        assert data == snapshot

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"n_modules": 6, "n_series": 3},
            {"solver": "traditional"},
            {"weather.latitude_deg": 60.0, "weather.seed": 4},
            {"module.gamma_p_per_k": -0.002},
            {"solver.options.tie_tolerance": 0.1},
        ],
        ids=["base", "modules", "solver", "weather", "datasheet", "options"],
    )
    def test_json_round_trip_stability(self, base_scenario, overrides):
        """JSON -> spec -> JSON is a fixed point, with and without overrides."""
        spec = base_scenario.with_overrides(overrides)
        once = ScenarioSpec.from_json(spec.to_json())
        assert once.to_dict() == spec.to_dict()
        twice = ScenarioSpec.from_json(once.to_json())
        assert twice.to_dict() == once.to_dict()


# ---------------------------------------------------------------------------
# Plan expansion
# ---------------------------------------------------------------------------


class TestSweepPlan:
    def test_grid_expansion_order(self, base_scenario):
        plan = SweepPlan(
            name="t",
            base=base_scenario,
            axes=(
                SweepAxis("n_modules", (2, 4)),
                SweepAxis("solver.name", ("greedy", "traditional")),
            ),
        )
        assert plan.n_points == 4
        points = plan.points()
        assert [(p.overrides["n_modules"], p.overrides["solver.name"]) for p in points] == [
            (2, "greedy"),
            (2, "traditional"),
            (4, "greedy"),
            (4, "traditional"),
        ]
        assert len({p.name for p in points}) == 4
        for point in points:
            assert point.spec.name == point.name
            assert point.spec.n_modules == point.overrides["n_modules"]
            assert point.spec.solver.name == point.overrides["solver.name"]

    def test_zip_expansion(self, base_scenario):
        plan = SweepPlan(
            name="t",
            base=base_scenario,
            axes=(
                SweepAxis("n_modules", (2, 4, 6)),
                SweepAxis("weather.seed", (1, 2, 3)),
            ),
            mode="zip",
        )
        assert plan.n_points == 3
        pairs = [
            (p.spec.n_modules, p.spec.weather.seed) for p in plan.points()
        ]
        assert pairs == [(2, 1), (4, 2), (6, 3)]

    def test_zip_requires_equal_lengths(self, base_scenario):
        with pytest.raises(ConfigurationError, match="equal-length"):
            SweepPlan(
                name="t",
                base=base_scenario,
                axes=(SweepAxis("n_modules", (2, 4)), SweepAxis("weather.seed", (1,))),
                mode="zip",
            )

    def test_duplicate_axis_keys_rejected(self, base_scenario):
        with pytest.raises(ConfigurationError, match="unique"):
            SweepPlan(
                name="t",
                base=base_scenario,
                axes=(SweepAxis("solver.name", ("greedy",)), SweepAxis("roof.name", ("x",))),
            )

    def test_unknown_mode_rejected(self, base_scenario):
        with pytest.raises(ConfigurationError, match="mode"):
            SweepPlan(
                name="t",
                base=base_scenario,
                axes=(SweepAxis("n_modules", (2,)),),
                mode="diagonal",
            )

    def test_negative_axis_values_keep_their_sign(self, base_scenario):
        """Regression: labels must not strip the minus sign of negatives."""
        plan = SweepPlan(
            name="t",
            base=base_scenario,
            axes=(SweepAxis("weather.latitude_deg", (-10.0, 10.0)),),
        )
        points = plan.points()  # must not collide
        assert [p.labels["latitude_deg"] for p in points] == ["-10.0", "10.0"]
        assert points[0].spec.weather.latitude_deg == -10.0

    def test_axis_labels(self, base_scenario):
        axis = SweepAxis("weather.seed", (1, 2), labels=("a", "b"))
        plan = SweepPlan(name="t", base=base_scenario, axes=(axis,))
        assert [p.labels["seed"] for p in plan.points()] == ["a", "b"]
        with pytest.raises(ConfigurationError, match="labels"):
            SweepAxis("weather.seed", (1, 2), labels=("only-one",))

    def test_plan_json_round_trip(self, base_scenario, tmp_path):
        plan = SweepPlan(
            name="t",
            base=base_scenario,
            axes=(
                SweepAxis("n_modules", (2, 4)),
                SweepAxis("weather.seed", (1, 2), labels=("wet", "dry")),
            ),
            mode="zip",
            description="round trip",
        )
        assert SweepPlan.from_json(plan.to_json()).to_dict() == plan.to_dict()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert SweepPlan.load(path).to_dict() == plan.to_dict()


# ---------------------------------------------------------------------------
# Execution and aggregation
# ---------------------------------------------------------------------------


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sweep_outcome(self, base_scenario, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("sweep-cache")
        plan = SweepPlan(
            name="modules-x-solver",
            base=base_scenario,
            axes=(
                SweepAxis("n_modules", (2, 4)),
                SweepAxis("solver.name", ("greedy", "traditional")),
            ),
        )
        cold = run_sweep(plan, cache=cache_dir, parallel=False)
        warm = run_sweep(plan, cache=cache_dir, parallel=False)
        return plan, cold, warm

    def test_points_in_plan_order(self, sweep_outcome):
        plan, cold, _ = sweep_outcome
        assert [p.name for p in cold.points] == [p.name for p in plan.points()]
        assert cold.n_points == 4
        for point in cold.points:
            assert point.result.scenario == point.name
            assert point.result.annual_energy_mwh > 0

    def test_cold_sweep_computes_solar_once(self, sweep_outcome):
        """Neither axis touches the solar key: one computation serves the grid."""
        _, cold, _ = sweep_outcome
        assert cold.stage_recompute_counts()["solar"] == 1
        assert cold.cache_hit_counts()["solar"] == 3

    def test_warm_sweep_recomputes_nothing(self, sweep_outcome):
        _, _, warm = sweep_outcome
        recomputes = warm.stage_recompute_counts()
        assert recomputes["solar"] == 0
        assert recomputes["scene"] == 0
        assert recomputes["grid"] == 0
        assert recomputes["suitability"] == 0
        assert warm.cache_hit_counts()["solar"] == warm.n_points

    def test_warm_matches_cold(self, sweep_outcome):
        _, cold, warm = sweep_outcome
        cold_prints = [p.result.fingerprint() for p in cold.points]
        warm_prints = [p.result.fingerprint() for p in warm.points]
        assert cold_prints == warm_prints

    def test_table_rows(self, sweep_outcome):
        _, cold, _ = sweep_outcome
        rows = cold.table()
        assert len(rows) == 4
        assert rows[0]["n_modules"] == 2
        assert rows[0]["name"] == "greedy"
        assert rows[0]["annual_energy_mwh"] > 0

    def test_group_by(self, sweep_outcome):
        _, cold, _ = sweep_outcome
        groups = cold.group_by("n_modules")
        assert sorted(groups) == [2, 4]
        assert all(len(points) == 2 for points in groups.values())
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            cold.group_by("nope")

    def test_pivot(self, sweep_outcome):
        _, cold, _ = sweep_outcome
        pivot = cold.pivot("n_modules", "name", "annual_energy_mwh")
        assert pivot.row_labels == (2, 4)
        assert pivot.col_labels == ("greedy", "traditional")
        for i, point_row in enumerate(pivot.values):
            assert all(value is not None and value > 0 for value in point_row)
        # pivot cells match the underlying results
        by_name = {p.name: p.result for p in cold.points}
        first = by_name["modules-x-solver@n_modules=2+name=greedy"]
        assert pivot.values[0][0] == first.annual_energy_mwh

    def test_result_json_round_trip(self, sweep_outcome, tmp_path):
        _, cold, _ = sweep_outcome
        path = tmp_path / "sweep.json"
        cold.save(path)
        restored = SweepResult.load(path)
        assert restored.to_dict() == cold.to_dict()
        assert restored.stage_recompute_counts() == cold.stage_recompute_counts()

    def test_sweep_report_is_deterministic(self, sweep_outcome):
        _, cold, _ = sweep_outcome
        first = sweep_report(cold)
        second = sweep_report(cold)
        assert first.markdown == second.markdown
        assert first.csv == second.csv
        assert "| point |" in first.markdown
        assert "Stage cache reuse" in first.markdown

    def test_grid_dims_recorded(self, sweep_outcome):
        _, cold, _ = sweep_outcome
        result = cold.points[0].result
        assert result.grid_cols > 0 and result.grid_rows > 0
        # and survive the record round trip
        restored = type(result).from_dict(result.to_dict())
        assert (restored.grid_cols, restored.grid_rows) == (
            result.grid_cols,
            result.grid_rows,
        )


class TestCatalogWarmBatch:
    def test_warm_catalog_rerun_has_zero_solar_recomputes(self, tmp_path):
        """Acceptance: a warm re-run over the catalog recomputes no solar stage."""
        specs = list(builtin_scenarios().values())
        cache = tmp_path / "catalog-cache"
        run_batch(specs, cache=cache, parallel=False)
        warm = run_batch(specs, cache=cache, parallel=False)
        misses = warm.cache_miss_counts()
        assert misses.get("solar", 0) == 0
        assert misses.get("scene", 0) == 0
        assert misses.get("grid", 0) == 0
        assert warm.cache_hit_counts()["solar"] == len(specs)


# ---------------------------------------------------------------------------
# Report rendering and presets
# ---------------------------------------------------------------------------


class TestRenderers:
    def test_markdown_formats_and_missing_cells(self):
        text = render_markdown_table(
            [{"a": 1, "b": 1.5}, {"a": 2}],
            columns=[("a", "A"), ("b", "B")],
            formats={"b": "%.2f"},
        )
        assert text.splitlines() == [
            "| A | B |",
            "| --- | --- |",
            "| 1 | 1.50 |",
            "| 2 |  |",
        ]

    def test_csv(self):
        text = render_csv(
            [{"a": 1, "b": "x,y"}], columns=[("a", "A"), ("b", "B")]
        )
        assert text == 'A,B\n1,"x,y"\n'

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            render_markdown_table([], columns=[])

    def test_presets_registered(self):
        assert available_presets() == ["catalog", "table1"]
        with pytest.raises(ConfigurationError, match="unknown report preset"):
            generate_report("nope")


class TestCatalogPreset:
    def test_catalog_report_lists_every_scenario(self):
        artifact = generate_report("catalog")
        names = {row["name"] for row in artifact.rows}
        assert names == set(builtin_scenarios())
        assert artifact.markdown == generate_report("catalog").markdown
        assert artifact.text("csv").startswith("Scenario,")

    def test_generated_scenarios_doc_embeds_catalog(self):
        document = render_scenarios_markdown()
        assert document == render_scenarios_markdown()  # deterministic
        for name in builtin_scenarios():
            assert f"## `{name}`" in document


class TestTable1Equivalence:
    @pytest.fixture(scope="class")
    def legacy_rows(self, tiny_table1_config):
        results = run_table1(tiny_table1_config, roofs=("roof2", "roof3"))
        return results.report.as_dicts()

    def test_sweep_rows_match_legacy_exactly(
        self, tiny_table1_config, legacy_rows, tmp_path
    ):
        """Acceptance: the sweep-driven Table 1 matches the legacy path row-for-row."""
        outcome = run_table1_sweep(
            tiny_table1_config,
            roofs=("roof2", "roof3"),
            cache=tmp_path / "cache",
            parallel=False,
        )
        assert outcome.report.as_dicts() == legacy_rows

    def test_report_artifact_rows_and_determinism(
        self, tiny_table1_config, legacy_rows, tmp_path
    ):
        """Acceptance: the Markdown artifact is deterministic and row-exact."""
        cache = tmp_path / "cache"
        cold = table1_report(
            tiny_table1_config, roofs=("roof2", "roof3"), cache=cache, parallel=False
        )
        warm = table1_report(
            tiny_table1_config, roofs=("roof2", "roof3"), cache=cache, parallel=False
        )
        assert list(cold.rows) == legacy_rows
        assert cold.markdown == warm.markdown  # byte-identical regeneration
        assert cold.csv == warm.csv
        for row in legacy_rows:
            assert f"| {row['roof']} | {row['WxL']} |" in cold.markdown

    def test_plan_mirrors_legacy_configuration(self, tiny_table1_config):
        plan = table1_sweep_plan(tiny_table1_config, roofs=("roof2",))
        assert plan.n_points == 2  # 1 roof x 2 module counts
        base = plan.base
        assert base.n_series == tiny_table1_config.series_length
        assert base.time.step_minutes == tiny_table1_config.case_study.time_step_minutes
        assert base.weather.seed == tiny_table1_config.case_study.weather_seed
        assert base.solar.n_horizon_sectors == 16

    def test_unknown_roof_rejected(self, tiny_table1_config):
        with pytest.raises(ConfigurationError, match="unknown case-study roofs"):
            table1_sweep_plan(tiny_table1_config, roofs=("roof9",))

    def test_wiring_loss_opt_out_unsupported(self, tiny_table1_config):
        from dataclasses import replace

        config = replace(tiny_table1_config, include_wiring_loss=False)
        with pytest.raises(ConfigurationError, match="wiring"):
            table1_sweep_plan(config)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestSweepCli:
    def test_adhoc_sweep(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--base", "residential-south",
                "--axis", "n_modules=3,6",
                "--axis", "solver.name=greedy,traditional",
                "--serial",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(tmp_path / "sweep.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "| point |" in captured.out
        assert "stage recomputations" in captured.err
        restored = SweepResult.load(tmp_path / "sweep.json")
        assert restored.n_points == 4

    def test_plan_file_and_save_plan(self, capsys, tmp_path, base_scenario):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "sweep",
                "--base", "residential-south",
                "--axis", "n_modules=3,6",
                "--serial",
                "--cache-dir", str(tmp_path / "cache"),
                "--save-plan", str(plan_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "sweep", str(plan_path),
                "--serial",
                "--cache-dir", str(tmp_path / "cache"),
                "--format", "csv",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("point,")

    def test_axis_value_parsing_errors(self, capsys):
        assert main(["sweep", "--base", "residential-south", "--axis", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["sweep", "--base", "residential-south"]) == 2
        assert "at least one --axis" in capsys.readouterr().err

    def test_plan_and_base_are_exclusive(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{}", encoding="utf-8")
        code = main(
            ["sweep", str(path), "--base", "residential-south", "--axis", "n_modules=3"]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_plan_file_rejects_adhoc_flags(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{}", encoding="utf-8")
        assert main(["sweep", str(path), "--zip"]) == 2
        assert "--zip/--name" in capsys.readouterr().err
        assert main(["sweep", str(path), "--name", "x"]) == 2
        assert "--zip/--name" in capsys.readouterr().err


class TestReportCli:
    def test_catalog_preset_stdout(self, capsys):
        assert main(["report", "--preset", "catalog"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Built-in scenario catalog")
        assert "residential-south" in out

    def test_table1_preset_to_file(self, capsys, tmp_path):
        output = tmp_path / "table1.md"
        code = main(
            [
                "report",
                "--preset", "table1",
                "--scale", "0.35",
                "--modules", "6",
                "--series-length", "2",
                "--step-minutes", "120",
                "--day-stride", "30",
                "--roofs", "roof2",
                "--serial",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(output),
            ]
        )
        assert code == 0
        assert "written to" in capsys.readouterr().out
        text = output.read_text(encoding="utf-8")
        assert "| Roof |" in text
        assert "| roof2 |" in text

    def test_bad_modules_rejected(self, capsys):
        assert main(["report", "--preset", "table1", "--modules", ","]) == 2
        assert "at least one module count" in capsys.readouterr().err
