"""Tests of the scenario catalog, stage cache, and batch runner."""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro
from repro.errors import ConfigurationError
from repro.gis import simple_residential_roof
from repro.runner import (
    StageCache,
    available_solvers,
    content_digest,
    read_results_jsonl,
    run_batch,
    run_scenario,
    solve,
)
from repro.scenario import (
    ScenarioSpec,
    WeatherSpec,
    builtin_scenarios,
    get_scenario,
    roof_spec_from_dict,
    roof_spec_to_dict,
    scenario_names,
)


@pytest.fixture(scope="module")
def catalog():
    return builtin_scenarios()


@pytest.fixture()
def fast_scenario(catalog):
    """The cheapest catalog entry, used by the cache tests."""
    return catalog["residential-south"]


# ---------------------------------------------------------------------------
# Scenario specification round-trips
# ---------------------------------------------------------------------------


class TestScenarioSpec:
    def test_catalog_size_and_coverage(self, catalog):
        assert len(catalog) >= 10
        tags = {tag for spec in catalog.values() for tag in spec.tags}
        for required in ("residential", "industrial", "fleet", "east-west",
                        "high-latitude", "shading", "sparse"):
            assert required in tags, f"catalog lacks a {required!r} scenario"
        assert scenario_names() == list(catalog)

    def test_every_catalog_entry_round_trips_via_json(self, catalog):
        for spec in catalog.values():
            restored = ScenarioSpec.from_json(spec.to_json())
            assert restored.to_dict() == spec.to_dict(), spec.name

    def test_roof_spec_round_trip_preserves_geometry(self, catalog):
        roof = catalog["industrial-pipes"].roof
        restored = roof_spec_from_dict(roof_spec_to_dict(roof))
        assert restored.width_m == roof.width_m
        assert len(restored.obstacles) == len(roof.obstacles)
        assert [o.name for o in restored.obstacles] == [o.name for o in roof.obstacles]
        first, first_restored = roof.obstacles[0], restored.obstacles[0]
        assert [(v.x, v.y) for v in first_restored.polygon.vertices] == [
            (v.x, v.y) for v in first.polygon.vertices
        ]

    def test_save_and_load_file(self, fast_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        fast_scenario.save(path)
        assert ScenarioSpec.load(path).to_dict() == fast_scenario.to_dict()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-scenario")

    def test_unknown_module_rejected(self, fast_scenario):
        with pytest.raises(ConfigurationError):
            replace(fast_scenario, module="not-a-module")

    def test_bad_weather_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WeatherSpec(kind="martian")

    def test_with_solver_copies(self, fast_scenario):
        variant = fast_scenario.with_solver("ilp", time_limit_s=5.0)
        assert variant.solver.name == "ilp"
        assert variant.solver.options == {"time_limit_s": 5.0}
        assert fast_scenario.solver.name == "greedy"

    def test_content_keys_distinguish_scene_inputs(self, fast_scenario):
        wider = replace(
            fast_scenario, roof=replace(fast_scenario.roof, width_m=13.0)
        )
        assert content_digest(fast_scenario.scene_payload()) != content_digest(
            wider.scene_payload()
        )
        # The solver choice must NOT affect the expensive-stage keys.
        other_solver = fast_scenario.with_solver("traditional")
        assert content_digest(fast_scenario.solar_payload()) == content_digest(
            other_solver.solar_payload()
        )


# ---------------------------------------------------------------------------
# Stage cache behaviour
# ---------------------------------------------------------------------------


class TestStageCache:
    def test_second_run_hits_every_stage(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache")
        cold = run_scenario(fast_scenario, cache=cache)
        assert not any(cold.stage_cached.values())
        warm = run_scenario(fast_scenario, cache=cache)
        assert all(warm.stage_cached.values())
        assert warm.fingerprint() == cold.fingerprint()
        assert cache.stats.hits >= 4

    def test_content_change_invalidates(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache")
        run_scenario(fast_scenario, cache=cache)
        changed = replace(
            fast_scenario,
            name="changed-weather",
            weather=replace(fast_scenario.weather, seed=99),
        )
        result = run_scenario(changed, cache=cache)
        # Scene and grid do not depend on the weather; the solar field does.
        assert result.stage_cached["scene"]
        assert result.stage_cached["grid"]
        assert not result.stage_cached["solar"]

    def test_solver_change_reuses_all_stages(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache")
        run_scenario(fast_scenario, cache=cache)
        result = run_scenario(fast_scenario.with_solver("traditional"), cache=cache)
        assert all(result.stage_cached.values())

    def test_disabled_cache_never_hits(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache", enabled=False)
        run_scenario(fast_scenario, cache=cache)
        result = run_scenario(fast_scenario, cache=cache)
        assert not any(result.stage_cached.values())
        assert cache.entry_count() == 0

    def test_use_cache_false_overrides_enabled_handle(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache", enabled=True)
        run_scenario(fast_scenario, cache=cache, use_cache=False)
        assert cache.entry_count() == 0
        result = run_scenario(fast_scenario, cache=cache, use_cache=False)
        assert not any(result.stage_cached.values())

    def test_disabled_handle_stays_disabled_in_parallel_batch(
        self, fast_scenario, tmp_path, monkeypatch
    ):
        # A disabled handle must not resurrect as an enabled default-dir
        # cache inside the worker processes.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        cache = StageCache(root=tmp_path / "cache", enabled=False)
        batch = run_batch([fast_scenario], cache=cache, jobs=2)
        assert not any(batch.results[0].stage_cached.values())
        assert cache.entry_count() == 0
        assert not (tmp_path / "default").exists()

    def test_corrupt_entry_is_a_miss(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache")
        run_scenario(fast_scenario, cache=cache)
        for entry in sorted((tmp_path / "cache").rglob("*.pkl")):
            entry.write_bytes(b"not a pickle")
        result = run_scenario(fast_scenario, cache=cache)
        assert not any(result.stage_cached.values())

    def test_clear(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache")
        run_scenario(fast_scenario, cache=cache)
        assert cache.entry_count() > 0
        removed = cache.clear()
        assert removed == cache.stats.writes
        assert cache.entry_count() == 0


# ---------------------------------------------------------------------------
# Batch runner
# ---------------------------------------------------------------------------


class TestBatchRunner:
    @pytest.fixture(scope="class")
    def batch_specs(self):
        catalog = builtin_scenarios()
        return [
            catalog["residential-south"],
            catalog["fleet-a-n6"],
            catalog["fleet-b-n8"],
            catalog["fleet-c-baseline"],
        ]

    def test_parallel_matches_serial(self, batch_specs, tmp_path):
        serial = run_batch(
            batch_specs, cache=tmp_path / "cache-serial", parallel=False
        )
        parallel = run_batch(
            batch_specs, cache=tmp_path / "cache-parallel", jobs=2
        )
        assert serial.jobs == 1 and parallel.jobs == 2
        assert [r.fingerprint() for r in serial.results] == [
            r.fingerprint() for r in parallel.results
        ]

    def test_results_jsonl_round_trip(self, batch_specs, tmp_path):
        path = tmp_path / "results.jsonl"
        batch = run_batch(
            batch_specs, cache=tmp_path / "cache", parallel=False, results_path=path
        )
        restored = read_results_jsonl(path)
        assert [r.to_dict() for r in restored] == [r.to_dict() for r in batch.results]

    def test_warm_rerun_hits_cache(self, batch_specs, tmp_path):
        cache_dir = tmp_path / "cache"
        run_batch(batch_specs, cache=cache_dir, parallel=False)
        warm = run_batch(batch_specs, cache=cache_dir, parallel=False)
        hits = warm.cache_hit_counts()
        for stage in ("scene", "grid", "solar", "suitability"):
            assert hits[stage] == len(batch_specs)

    def test_fleet_scenarios_share_expensive_stages(self, batch_specs, tmp_path):
        batch = run_batch(batch_specs, cache=tmp_path / "cache", parallel=False)
        by_name = batch.by_name()
        # The later fleet variants reuse the first fleet scenario's stages.
        assert all(by_name["fleet-b-n8"].stage_cached.values())
        assert all(by_name["fleet-c-baseline"].stage_cached.values())

    def test_duplicate_names_rejected(self, batch_specs, tmp_path):
        with pytest.raises(ConfigurationError):
            run_batch(batch_specs + [batch_specs[0]], cache=tmp_path / "c")

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_batch([], cache=tmp_path / "c")


# ---------------------------------------------------------------------------
# Solver registry + plan_roof integration
# ---------------------------------------------------------------------------


class TestSolverSelection:
    def test_registry_contains_all_four(self):
        assert {"greedy", "traditional", "ilp", "exhaustive"} <= set(available_solvers())

    def test_unknown_solver_rejected(self, small_problem):
        with pytest.raises(ConfigurationError):
            solve(small_problem, "annealing")

    def test_bad_options_rejected(self, small_problem):
        with pytest.raises(ConfigurationError):
            solve(small_problem, "greedy", {"no_such_option": 1})

    def test_solver_outcomes_are_valid_placements(self, small_problem):
        for name in ("greedy", "traditional"):
            outcome = solve(small_problem, name)
            assert outcome.solver == name
            outcome.placement.validate(small_problem.grid)

    def test_outcome_forwards_solver_specific_fields(self, small_problem):
        greedy = solve(small_problem, "greedy")
        assert greedy.relaxed_threshold_count == greedy.info["relaxed_threshold_count"]
        traditional = solve(small_problem, "traditional")
        assert traditional.strategy == traditional.info["strategy"]
        with pytest.raises(AttributeError):
            traditional.objective_value

    def test_legacy_result_types_still_importable(self):
        from repro import GreedyResult, TraditionalResult  # noqa: F401

    def test_plan_roof_solver_selectable(self, tmp_path):
        spec = simple_residential_roof(width_m=8.0, depth_m=5.0, n_obstacles=1, seed=3)
        cache = StageCache(root=tmp_path / "cache")
        kwargs = dict(
            n_modules=4,
            n_series=2,
            time_grid=repro.TimeGrid(step_minutes=240.0, day_stride=60),
            cache=cache,
        )
        greedy = repro.plan_roof(spec, solver="greedy", **kwargs)
        baseline = repro.plan_roof(spec, solver="traditional", **kwargs)
        assert greedy.solver_name == "greedy"
        assert baseline.solver_name == "traditional"
        # Backward-compatible aliases still resolve.
        greedy.greedy.placement.validate(greedy.problem.grid)
        greedy.traditional.placement.validate(greedy.problem.grid)
        # The second call reused every expensive stage from the first.
        assert all(baseline.stage_cached.values())
        # A traditional-vs-traditional comparison is a no-op improvement.
        assert baseline.improvement_percent == pytest.approx(0.0, abs=1e-9)


class TestScenarioResult:
    def test_report_mentions_cache_and_solver(self, fast_scenario, tmp_path):
        cache = StageCache(root=tmp_path / "cache")
        run_scenario(fast_scenario, cache=cache)
        warm = run_scenario(fast_scenario, cache=cache)
        text = warm.report()
        assert fast_scenario.name in text
        assert "solver=greedy" in text
        assert "cached:" in text

    def test_ilp_scenario_runs(self, tmp_path):
        result = run_scenario(
            get_scenario("ilp-exact-mini"), cache=StageCache(root=tmp_path / "c")
        )
        assert result.solver == "ilp"
        assert result.annual_energy_mwh > 0
        assert result.solver_info["solver_status"]
