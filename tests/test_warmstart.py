"""Warm-start and anytime-execution tests across the solver stack.

Covers the PR's equivalence guarantees end to end:

* the solver registry's capability declarations (warm-start support,
  budget option) and backward compatibility with plain three-argument
  solver adapters;
* greedy prefix replay: a warm solve resumed from a smaller instance's
  placement is module-for-module identical to the cold solve, and every
  malformed/foreign hint falls back to a cold solve instead of failing;
* ILP MIP-start semantics: a warm incumbent never degrades the objective,
  and the optimality ``gap`` field is reported;
* capability-driven budget threading through fallback chains (no solver
  name special-casing);
* warm-start provenance on :class:`ScenarioResult` (serialised, but kept
  out of the fingerprint) and the ``SolverSpec.warm_start`` opt-out;
* sweep-level warm execution: axis-ascending ordering, neighbour wiring,
  and a warm sweep whose aggregated table matches the cold run exactly;
* store-level wiring: enrollment-time neighbour digests, claim-time hint
  resolution, the v3 -> v4 schema migration, and a worker fleet picking
  hints up from done rows.
"""

from __future__ import annotations

import dataclasses
import sqlite3

import numpy as np
import pytest

from repro.core import (
    FloorplanProblem,
    GreedyConfig,
    ILPConfig,
    compute_suitability,
    greedy_floorplan,
    ilp_floorplan,
)
from repro.errors import ConfigurationError
from repro.gis import RoofSpec
from repro.pv.array import SeriesParallelTopology
from repro.pv.datasheet import PV_MF165EB3
from repro.runner import (
    ResultStore,
    SolverOutcome,
    WarmStart,
    get_solver,
    get_solver_entry,
    register_solver,
    run_batch,
    run_scenario,
    run_worker,
    solve,
    solve_with_fallback,
)
from repro.runner.stages import ScenarioResult
from repro.runner.store import STORE_SCHEMA_VERSION
from repro.scenario import ScenarioSpec, TimeSpec
from repro.scenario.spec import SolverSpec
from repro.sweep import SweepAxis, SweepPlan, run_sweep


def tiny_spec(name: str, n_modules: int = 2, warm_start: bool = True) -> ScenarioSpec:
    """A seconds-scale scenario; all sizes share one roof (and so one
    solar field), which is what makes their placements prefix-compatible."""
    return ScenarioSpec(
        name=name,
        roof=RoofSpec(
            name="warm-roof",
            width_m=6.0,
            depth_m=4.0,
            tilt_deg=30.0,
            azimuth_deg=0.0,
        ),
        n_modules=n_modules,
        n_series=2,
        grid_pitch=0.4,
        time=TimeSpec(step_minutes=240.0, day_stride=45),
        solver=SolverSpec(name="greedy", warm_start=warm_start),
    )


# ---------------------------------------------------------------------------
# Registry capabilities
# ---------------------------------------------------------------------------


class TestRegistryCapabilities:
    def test_builtin_capability_declarations(self):
        assert get_solver_entry("greedy").supports_warm_start
        assert get_solver_entry("ilp").supports_warm_start
        assert get_solver_entry("ilp").budget_option == "time_limit_s"
        assert get_solver_entry("ilp").supports_budget
        for name in ("traditional", "exhaustive"):
            entry = get_solver_entry(name)
            assert not entry.supports_warm_start
            assert not entry.supports_budget

    def test_legacy_three_argument_solver_still_works(self, small_problem):
        """Solvers registered without capabilities keep the old 3-arg
        calling convention -- a warm hint must not reach (or break) them."""
        seen = {}

        def legacy(problem, options, suitability):
            seen["options"] = dict(options)
            result = greedy_floorplan(problem, suitability=suitability)
            return SolverOutcome(
                solver="legacy-test",
                placement=result.placement,
                suitability=result.suitability,
                runtime_s=result.runtime_s,
                info={},
            )

        register_solver("legacy-test", legacy, overwrite=True)
        cold = greedy_floorplan(small_problem)
        hint = WarmStart(placement=cold.placement, exact_prefix=True)
        outcome = solve(small_problem, "legacy-test", warm_start=hint, budget_s=9.0)
        assert outcome.placement.n_modules == small_problem.n_modules
        assert not outcome.warm_started
        # No declared budget option either: budget_s is silently dropped.
        assert seen["options"] == {}

    def test_builtin_adapters_accept_three_positional_args(self, small_problem):
        """``get_solver`` hands out the raw adapter: warm-capable builtins
        must keep the hint optional so legacy 3-arg callers keep working."""
        outcome = get_solver("greedy")(small_problem, {}, None)
        assert outcome.placement.n_modules == small_problem.n_modules
        assert not outcome.warm_started

    def test_budget_threaded_into_declared_option(self, small_problem):
        received = {}

        def probe(problem, options, suitability):
            received.update(options)
            result = greedy_floorplan(problem, suitability=suitability)
            return SolverOutcome(
                solver="budget-probe",
                placement=result.placement,
                suitability=result.suitability,
                runtime_s=result.runtime_s,
                info={},
            )

        register_solver(
            "budget-probe", probe, overwrite=True, budget_option="wall_s"
        )
        solve(small_problem, "budget-probe", budget_s=2.5)
        assert received["wall_s"] == 2.5
        # An explicit caller option always wins over the threaded budget.
        received.clear()
        solve(small_problem, "budget-probe", options={"wall_s": 9.0}, budget_s=2.5)
        assert received["wall_s"] == 9.0

    def test_fallback_budget_is_capability_driven(self, small_problem):
        """The chain threads its remaining budget into *any* solver that
        declares a budget option -- there is no ILP name special case."""
        received = {}

        def failing(problem, options, suitability):
            raise RuntimeError("primary always fails")

        def probe(problem, options, suitability):
            received.update(options)
            result = greedy_floorplan(problem, suitability=suitability)
            return SolverOutcome(
                solver="chain-probe",
                placement=result.placement,
                suitability=result.suitability,
                runtime_s=result.runtime_s,
                info={},
            )

        register_solver("chain-fail", failing, overwrite=True)
        register_solver(
            "chain-probe", probe, overwrite=True, budget_option="wall_s"
        )
        chain = solve_with_fallback(
            small_problem, "chain-fail", fallback=("chain-probe",), budget_s=30.0
        )
        assert chain.degraded
        assert chain.outcome.solver == "chain-probe"
        # The probe got the chain's *remaining* wall clock, not the full
        # budget and not nothing.
        assert 0.0 < received["wall_s"] <= 30.0


# ---------------------------------------------------------------------------
# Greedy prefix replay
# ---------------------------------------------------------------------------


def ladder_problem(base: FloorplanProblem, n_modules: int) -> FloorplanProblem:
    """The same roof instance with a different module count."""
    return FloorplanProblem(
        grid=base.grid,
        solar=base.solar,
        n_modules=n_modules,
        topology=SeriesParallelTopology(n_series=3, n_parallel=n_modules // 3),
        datasheet=base.datasheet,
        label=f"{base.label}-n{n_modules}",
    )


class TestGreedyWarmStart:
    def test_warm_replay_is_module_for_module_identical(self, small_problem):
        """greedy(N) warm-started from greedy(k < N) equals cold greedy(N)
        exactly -- placements, order, rotations and relaxation tally."""
        small = ladder_problem(small_problem, 3)
        cold_small = greedy_floorplan(small)
        cold_full = greedy_floorplan(small_problem)
        warm_full = greedy_floorplan(
            small_problem,
            warm_start=WarmStart(placement=cold_small.placement, exact_prefix=True),
        )
        assert warm_full.warm_modules == 3
        assert warm_full.placement.modules == cold_full.placement.modules
        assert warm_full.relaxed_threshold_count == cold_full.relaxed_threshold_count

    @pytest.mark.parametrize("aggregate", ["mean", "anchor"])
    def test_warm_equals_cold_across_configs(self, small_problem, aggregate):
        config = GreedyConfig(footprint_aggregate=aggregate)
        small = ladder_problem(small_problem, 3)
        hint = WarmStart(
            placement=greedy_floorplan(small, config=config).placement,
            exact_prefix=True,
        )
        cold = greedy_floorplan(small_problem, config=config)
        warm = greedy_floorplan(small_problem, config=config, warm_start=hint)
        assert warm.placement.modules == cold.placement.modules

    def test_heuristic_hint_is_ignored_by_greedy(self, small_problem):
        """Only exact-prefix hints replay; a heuristic neighbour placement
        (different axis) must leave greedy identical to cold."""
        small = ladder_problem(small_problem, 3)
        hint = WarmStart(
            placement=greedy_floorplan(small).placement, exact_prefix=False
        )
        cold = greedy_floorplan(small_problem)
        warm = greedy_floorplan(small_problem, warm_start=hint)
        assert warm.warm_modules == 0
        assert warm.placement.modules == cold.placement.modules

    def test_foreign_hint_falls_back_to_cold(self, small_problem):
        """A hint produced by a different algorithm fails validation and
        the solve proceeds cold instead of raising."""
        greedy_like = greedy_floorplan(ladder_problem(small_problem, 3)).placement
        tampered = dataclasses.replace(
            greedy_like, metadata={**greedy_like.metadata, "algorithm": "ilp"}
        )
        cold = greedy_floorplan(small_problem)
        warm = greedy_floorplan(
            small_problem,
            warm_start=WarmStart(placement=tampered, exact_prefix=True),
        )
        assert warm.warm_modules == 0
        assert warm.placement.modules == cold.placement.modules

    def test_oversized_hint_falls_back_to_cold(self, small_problem):
        """A hint with more modules than the instance cannot be a prefix."""
        cold_full = greedy_floorplan(small_problem)
        small = ladder_problem(small_problem, 3)
        warm = greedy_floorplan(
            small,
            warm_start=WarmStart(placement=cold_full.placement, exact_prefix=True),
        )
        assert warm.warm_modules == 0
        assert warm.placement.modules == greedy_floorplan(small).placement.modules


# ---------------------------------------------------------------------------
# ILP MIP-start and gap reporting
# ---------------------------------------------------------------------------


class TestILPWarmStart:
    @pytest.fixture(scope="class")
    def tiny_problem(self, small_grid, small_solar):
        """A 2-module instance small enough for the ILP."""
        mask = np.zeros_like(small_grid.valid_mask)
        mask[2:8, 2:22] = small_grid.valid_mask[2:8, 2:22]
        grid = small_grid.with_mask(mask)
        return FloorplanProblem(
            grid=grid,
            solar=small_solar.restricted_to(grid),
            n_modules=2,
            topology=SeriesParallelTopology(2, 1),
            datasheet=PV_MF165EB3,
            label="tiny-warm",
        )

    def test_mip_start_never_degrades_and_reports_gap(self, tiny_problem):
        suitability = compute_suitability(tiny_problem.solar)
        config = ILPConfig(time_limit_s=20.0)
        cold = ilp_floorplan(tiny_problem, suitability=suitability, config=config)
        hint = WarmStart(
            placement=greedy_floorplan(tiny_problem, suitability=suitability).placement
        )
        warm = ilp_floorplan(
            tiny_problem, suitability=suitability, config=config, warm_start=hint
        )
        assert warm.warm_started
        assert warm.objective_value >= cold.objective_value - 1e-6
        assert warm.gap is not None
        assert warm.gap <= 1e-6  # proven optimum on this tiny instance
        assert warm.placement.metadata["gap"] == warm.gap

    def test_self_hint_reproduces_cold_objective(self, tiny_problem):
        """Warm-starting the ILP from its own cold solution is a fixed
        point: same objective, still optimal."""
        config = ILPConfig(time_limit_s=20.0)
        cold = ilp_floorplan(tiny_problem, config=config)
        warm = ilp_floorplan(
            tiny_problem, config=config, warm_start=WarmStart(placement=cold.placement)
        )
        assert warm.objective_value == pytest.approx(cold.objective_value, abs=1e-9)

    def test_corrupt_hint_solves_cold(self, tiny_problem):
        """A hint whose geometry does not fit this instance is rejected
        and the ILP solves cold (no incumbent, no crash)."""
        foreign = greedy_floorplan(tiny_problem).placement
        mismatched = dataclasses.replace(foreign, grid_pitch=foreign.grid_pitch * 2)
        cold = ilp_floorplan(tiny_problem, config=ILPConfig(time_limit_s=20.0))
        warm = ilp_floorplan(
            tiny_problem,
            config=ILPConfig(time_limit_s=20.0),
            warm_start=WarmStart(placement=mismatched),
        )
        assert not warm.warm_started
        assert warm.objective_value == pytest.approx(cold.objective_value, abs=1e-9)


# ---------------------------------------------------------------------------
# Scenario-level provenance and opt-out
# ---------------------------------------------------------------------------


class TestScenarioWarmStart:
    def test_result_round_trips_and_fingerprint_excludes_provenance(self):
        result = run_scenario(tiny_spec("prov", n_modules=2))
        data = result.to_dict()
        assert "warm_started" in data and "gap" in data
        restored = ScenarioResult.from_dict(data)
        assert restored.warm_started == result.warm_started
        assert restored.gap == result.gap
        # warm_started/gap are provenance like runtime_s: two runs of the
        # same scenario fingerprint identically whether or not they were
        # warm-started.
        twin = ScenarioResult.from_dict({**data, "warm_started": True, "gap": 0.5})
        assert twin.fingerprint() == result.fingerprint()

    def test_run_scenario_threads_hint_and_records_provenance(self):
        small = run_scenario(tiny_spec("ladder-2", n_modules=2))
        from repro.io.placement_json import placement_from_dict

        hint = WarmStart(
            placement=placement_from_dict(small.placement), exact_prefix=True
        )
        warm = run_scenario(tiny_spec("ladder-4", n_modules=4), warm_start=hint)
        cold = run_scenario(tiny_spec("ladder-4", n_modules=4))
        assert warm.warm_started
        assert not cold.warm_started
        assert warm.placement["modules"] == cold.placement["modules"]

    def test_solver_spec_opt_out_forces_cold(self):
        small = run_scenario(tiny_spec("optout-2", n_modules=2))
        from repro.io.placement_json import placement_from_dict

        hint = WarmStart(
            placement=placement_from_dict(small.placement), exact_prefix=True
        )
        result = run_scenario(
            tiny_spec("optout-4", n_modules=4, warm_start=False), warm_start=hint
        )
        assert not result.warm_started

    def test_solver_spec_serialises_opt_out_only_when_set(self):
        assert "warm_start" not in SolverSpec().to_dict()
        data = SolverSpec(warm_start=False).to_dict()
        assert data["warm_start"] is False
        assert SolverSpec.from_dict(data).warm_start is False
        # Digest stability: the default never changes a scenario's
        # dictionary form, so content digests are untouched by this PR.
        spec = tiny_spec("digest-probe")
        assert spec.to_dict() == ScenarioSpec.from_dict(spec.to_dict()).to_dict()


# ---------------------------------------------------------------------------
# Batch and sweep threading
# ---------------------------------------------------------------------------


class TestBatchAndSweepWarmStart:
    def test_run_batch_threads_hints_by_name(self, tmp_path):
        specs = [tiny_spec("wb-2", n_modules=2), tiny_spec("wb-4", n_modules=4)]
        batch = run_batch(
            specs,
            cache=tmp_path / "cache",
            parallel=False,
            warm_hints={"wb-4": ("wb-2", True)},
        )
        by_name = batch.by_name()
        assert by_name["wb-4"].warm_started
        assert not by_name["wb-2"].warm_started

    def test_warm_execution_order_and_wiring(self):
        plan = SweepPlan(
            name="wired",
            base=tiny_spec("wired-base"),
            axes=(
                SweepAxis("solver.name", ("greedy", "traditional")),
                # Deliberately declared descending: warm execution must
                # still walk the ladder small-to-large.
                SweepAxis("n_modules", (6, 4, 2)),
            ),
        )
        ordered, hints = plan.warm_execution()
        names = [point.name for point in ordered]
        assert names[0].endswith("n_modules=2")
        for point_name, (neighbour_name, _) in hints.items():
            assert names.index(neighbour_name) < names.index(point_name)
        greedy_mid = "wired@name=greedy+n_modules=4"
        assert hints[greedy_mid] == ("wired@name=greedy+n_modules=2", True)
        # Cross-solver step: heuristic wiring, never an exact prefix.
        trad_origin = "wired@name=traditional+n_modules=2"
        neighbour, exact = hints[trad_origin]
        assert neighbour == "wired@name=greedy+n_modules=2"
        assert not exact
        # The all-axes-origin point runs cold.
        assert "wired@name=greedy+n_modules=2" not in hints

    def test_warm_sweep_table_matches_cold(self, tmp_path):
        plan = SweepPlan(
            name="warm-vs-cold",
            base=tiny_spec("wvc-base"),
            axes=(SweepAxis("n_modules", (2, 4)),),
            warm_start=True,
        )
        cold = run_sweep(plan, cache=None, parallel=False, warm_start=False)
        warm = run_sweep(plan, cache=None, parallel=False)  # plan flag applies
        metrics = (
            "annual_energy_mwh",
            "baseline_energy_mwh",
            "improvement_percent",
            "wiring_extra_length_m",
            "capacity_factor",
        )
        assert warm.table(metrics) == cold.table(metrics)
        assert [r.fingerprint() for r in warm.results()] == [
            r.fingerprint() for r in cold.results()
        ]
        assert cold.warm_started_count() == 0
        assert warm.warm_started_count() == 1
        assert warm.summary()["n_warm_started"] == 1

    def test_plan_serialises_warm_start_only_when_set(self):
        base = tiny_spec("ser-base")
        cold_plan = SweepPlan(name="p", base=base, axes=(SweepAxis("n_modules", (2,)),))
        assert "warm_start" not in cold_plan.to_dict()
        warm_plan = SweepPlan(
            name="p", base=base, axes=(SweepAxis("n_modules", (2,)),), warm_start=True
        )
        restored = SweepPlan.from_json(warm_plan.to_json())
        assert restored.warm_start
        assert restored.to_dict() == warm_plan.to_dict()


# ---------------------------------------------------------------------------
# Store wiring and worker pickup
# ---------------------------------------------------------------------------


class TestStoreWarmHints:
    def test_enroll_records_wiring_and_resolves_after_neighbour_done(self, tmp_path):
        specs = [tiny_spec("sw-2", n_modules=2), tiny_spec("sw-4", n_modules=4)]
        with ResultStore(tmp_path / "store.sqlite") as store:
            records = store.enroll(
                "camp", specs, warm_hints={"sw-4": ("sw-2", True)}
            )
            by_name = {record.name: record for record in records}
            assert by_name["sw-4"].warm_hint_digest == by_name["sw-2"].digest
            assert by_name["sw-4"].warm_exact_prefix
            assert by_name["sw-2"].warm_hint_digest is None
            # Neighbour not done yet: no hint, the point would solve cold.
            assert store.warm_hint(by_name["sw-4"]) is None
            result = run_scenario(specs[0])
            store.mark_done("camp", by_name["sw-2"].digest, result)
            (refreshed,) = [
                record
                for record in store.points("camp")
                if record.name == "sw-4"
            ]
            hint = store.warm_hint(refreshed)
            assert hint is not None
            assert hint["source"] == "sw-2"
            assert hint["exact_prefix"] is True
            assert hint["placement"] == result.placement

    def test_enroll_rejects_unknown_neighbour(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite") as store:
            with pytest.raises(ConfigurationError):
                store.enroll(
                    "camp",
                    [tiny_spec("solo")],
                    warm_hints={"solo": ("not-enrolled", True)},
                )

    def test_v3_store_migrates_in_place_to_v4(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as seeded:
            seeded.enroll("camp", [tiny_spec("old-point")])
        with sqlite3.connect(path) as conn:
            conn.execute("ALTER TABLE points DROP COLUMN warm_hint_digest")
            conn.execute("ALTER TABLE points DROP COLUMN warm_exact_prefix")
            conn.execute("UPDATE meta SET value='3' WHERE key='schema_version'")
        with ResultStore(path) as migrated:
            (record,) = migrated.points("camp")
            assert record.warm_hint_digest is None
            assert record.warm_exact_prefix is False
            assert migrated.claim_next_pending("camp", owner="w1") is not None
        with sqlite3.connect(path) as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            assert row[0] == str(STORE_SCHEMA_VERSION)

    def test_worker_fleet_picks_hints_from_done_rows(self, tmp_path):
        """End to end: enrollment wires the ladder, a worker drains it in
        order, and the larger point's stored result is warm-started."""
        path = tmp_path / "fleet.sqlite"
        specs = [tiny_spec("fw-2", n_modules=2), tiny_spec("fw-4", n_modules=4)]
        with ResultStore(path) as store:
            store.enroll("fleet", specs, warm_hints={"fw-4": ("fw-2", True)})
        summary = run_worker(
            "fleet", store=path, serial=True, cache=tmp_path / "cache", poll_s=0.1
        )
        assert summary.done == 2 and not summary.failed
        with ResultStore(path) as store:
            by_name = {record.name: record for record in store.points("fleet")}
            assert by_name["fw-4"].result().warm_started
            assert not by_name["fw-2"].result().warm_started

    def test_worker_opt_out_solves_cold(self, tmp_path):
        path = tmp_path / "fleet.sqlite"
        specs = [tiny_spec("fc-2", n_modules=2), tiny_spec("fc-4", n_modules=4)]
        with ResultStore(path) as store:
            store.enroll("fleet", specs, warm_hints={"fc-4": ("fc-2", True)})
        summary = run_worker(
            "fleet",
            store=path,
            serial=True,
            cache=tmp_path / "cache",
            poll_s=0.1,
            warm_start=False,
        )
        assert summary.done == 2 and not summary.failed
        with ResultStore(path) as store:
            by_name = {record.name: record for record in store.points("fleet")}
            assert not by_name["fc-4"].result().warm_started
